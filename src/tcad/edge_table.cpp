#include "tcad/edge_table.h"

#include <cmath>

#include "common/units.h"

namespace mivtx::tcad {

namespace {
double eps_of(Material mat) {
  return (mat == Material::kSilicon ? kEpsRelSilicon : kEpsRelSiO2) *
         kVacuumPermittivity;
}
}  // namespace

EdgeTable build_edge_table(const DeviceStructure& s) {
  const Mesh& m = s.mesh;
  EdgeTable t;
  t.edges.reserve(2 * m.num_nodes());

  // Horizontal edges (i,j)-(i+1,j): face crosses cells (i, j-1) and (i, j).
  for (std::size_t i = 0; i + 1 < m.nx(); ++i) {
    for (std::size_t j = 0; j < m.ny(); ++j) {
      Edge e;
      e.a = m.node(i, j);
      e.b = m.node(i + 1, j);
      e.d = m.x(i + 1) - m.x(i);
      double cp = 0.0, si = 0.0;
      if (j > 0) {
        const Material mat = m.cell_material(i, j - 1);
        const double seg = m.dy_minus(j);
        cp += eps_of(mat) * seg;
        if (mat == Material::kSilicon) si += seg;
      }
      if (j + 1 < m.ny()) {
        const Material mat = m.cell_material(i, j);
        const double seg = m.dy_plus(j);
        cp += eps_of(mat) * seg;
        if (mat == Material::kSilicon) si += seg;
      }
      e.c_poisson = cp / e.d;
      e.si_face = si;
      e.abs_doping =
          0.5 * (std::fabs(s.doping[e.a]) + std::fabs(s.doping[e.b]));
      t.edges.push_back(e);
    }
  }
  // Vertical edges (i,j)-(i,j+1): face crosses cells (i-1, j) and (i, j).
  for (std::size_t i = 0; i < m.nx(); ++i) {
    for (std::size_t j = 0; j + 1 < m.ny(); ++j) {
      Edge e;
      e.a = m.node(i, j);
      e.b = m.node(i, j + 1);
      e.d = m.y(j + 1) - m.y(j);
      double cp = 0.0, si = 0.0;
      if (i > 0) {
        const Material mat = m.cell_material(i - 1, j);
        const double seg = m.dx_minus(i);
        cp += eps_of(mat) * seg;
        if (mat == Material::kSilicon) si += seg;
      }
      if (i + 1 < m.nx()) {
        const Material mat = m.cell_material(i, j);
        const double seg = m.dx_plus(i);
        cp += eps_of(mat) * seg;
        if (mat == Material::kSilicon) si += seg;
      }
      e.c_poisson = cp / e.d;
      e.si_face = si;
      e.abs_doping =
          0.5 * (std::fabs(s.doping[e.a]) + std::fabs(s.doping[e.b]));
      t.edges.push_back(e);
    }
  }
  t.si_volume.resize(m.num_nodes());
  for (std::size_t i = 0; i < m.nx(); ++i)
    for (std::size_t j = 0; j < m.ny(); ++j)
      t.si_volume[m.node(i, j)] = m.silicon_control_area(i, j);
  return t;
}

}  // namespace mivtx::tcad
