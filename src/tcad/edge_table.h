// Precomputed finite-volume discretization data: one entry per mesh edge
// with the Poisson coefficient and the silicon face portion, plus per-node
// silicon control volumes.  Built once per DeviceStructure.
#pragma once

#include <cstddef>
#include <vector>

#include "tcad/device.h"

namespace mivtx::tcad {

struct Edge {
  std::size_t a = 0, b = 0;  // node indices (a < b in grid order)
  double d = 0.0;            // center-to-center distance (m)
  double c_poisson = 0.0;    // eps-weighted face length / d (F/m per width)
  double si_face = 0.0;      // silicon portion of the face length (m)
  double abs_doping = 0.0;   // |doping| average (m^-3), for mobility
};

struct EdgeTable {
  std::vector<Edge> edges;
  std::vector<double> si_volume;  // per node, m^2 per width
};

EdgeTable build_edge_table(const DeviceStructure& s);

}  // namespace mivtx::tcad
