#include "tcad/mesh.h"

#include "common/error.h"

namespace mivtx::tcad {

Mesh::Mesh(std::vector<double> x_lines, std::vector<double> y_lines)
    : x_(std::move(x_lines)), y_(std::move(y_lines)) {
  MIVTX_EXPECT(x_.size() >= 2 && y_.size() >= 2, "mesh needs >= 2x2 lines");
  for (std::size_t i = 1; i < x_.size(); ++i)
    MIVTX_EXPECT(x_[i] > x_[i - 1], "x lines must increase");
  for (std::size_t j = 1; j < y_.size(); ++j)
    MIVTX_EXPECT(y_[j] > y_[j - 1], "y lines must increase");
  cell_materials_.assign(num_cells(), Material::kSilicon);
}

Material Mesh::cell_material(std::size_t ci, std::size_t cj) const {
  MIVTX_EXPECT(ci + 1 < nx() && cj + 1 < ny(), "cell index out of range");
  return cell_materials_[cell(ci, cj)];
}

void Mesh::set_cell_material(std::size_t ci, std::size_t cj, Material m) {
  MIVTX_EXPECT(ci + 1 < nx() && cj + 1 < ny(), "cell index out of range");
  cell_materials_[cell(ci, cj)] = m;
}

bool Mesh::node_touches_silicon(std::size_t i, std::size_t j) const {
  for (int di = -1; di <= 0; ++di) {
    for (int dj = -1; dj <= 0; ++dj) {
      const long ci = static_cast<long>(i) + di;
      const long cj = static_cast<long>(j) + dj;
      if (ci < 0 || cj < 0 || ci + 1 >= static_cast<long>(nx()) ||
          cj + 1 >= static_cast<long>(ny()))
        continue;
      if (cell_material(static_cast<std::size_t>(ci),
                        static_cast<std::size_t>(cj)) == Material::kSilicon)
        return true;
    }
  }
  return false;
}

bool Mesh::node_all_silicon(std::size_t i, std::size_t j) const {
  bool any = false;
  for (int di = -1; di <= 0; ++di) {
    for (int dj = -1; dj <= 0; ++dj) {
      const long ci = static_cast<long>(i) + di;
      const long cj = static_cast<long>(j) + dj;
      if (ci < 0 || cj < 0 || ci + 1 >= static_cast<long>(nx()) ||
          cj + 1 >= static_cast<long>(ny()))
        continue;
      any = true;
      if (cell_material(static_cast<std::size_t>(ci),
                        static_cast<std::size_t>(cj)) != Material::kSilicon)
        return false;
    }
  }
  return any;
}

double Mesh::silicon_control_area(std::size_t i, std::size_t j) const {
  double area = 0.0;
  const double dxm = dx_minus(i), dxp = dx_plus(i);
  const double dym = dy_minus(j), dyp = dy_plus(j);
  const double quad_dx[4] = {dxm, dxp, dxm, dxp};
  const double quad_dy[4] = {dym, dym, dyp, dyp};
  const int quad_ci[4] = {-1, 0, -1, 0};
  const int quad_cj[4] = {-1, -1, 0, 0};
  for (int qq = 0; qq < 4; ++qq) {
    const long ci = static_cast<long>(i) + quad_ci[qq];
    const long cj = static_cast<long>(j) + quad_cj[qq];
    if (ci < 0 || cj < 0 || ci + 1 >= static_cast<long>(nx()) ||
        cj + 1 >= static_cast<long>(ny()))
      continue;
    if (cell_material(static_cast<std::size_t>(ci),
                      static_cast<std::size_t>(cj)) == Material::kSilicon)
      area += quad_dx[qq] * quad_dy[qq];
  }
  return area;
}

double Mesh::control_area(std::size_t i, std::size_t j) const {
  return (dx_minus(i) + dx_plus(i)) * (dy_minus(j) + dy_plus(j));
}

std::vector<double> Mesh::subdivide(
    double origin,
    const std::vector<std::pair<double, std::size_t>>& segments) {
  std::vector<double> lines{origin};
  double pos = origin;
  for (const auto& [len, cells] : segments) {
    MIVTX_EXPECT(len > 0.0 && cells > 0, "bad mesh segment");
    const double step = len / static_cast<double>(cells);
    for (std::size_t k = 1; k <= cells; ++k) lines.push_back(pos + step * k);
    pos += len;
  }
  return lines;
}

}  // namespace mivtx::tcad
