// Tensor-product finite-volume mesh for the 2-D device cross-section.
//
// Nodes sit at the intersections of x-lines and y-lines; each node owns the
// control volume formed by the half-cells around it.  Materials are assigned
// per rectangular cell and the assembly routines average material properties
// over the edge-adjacent cells — the standard box-integration treatment of
// heterointerfaces (Si / SiO2 here).
#pragma once

#include <cstddef>
#include <vector>

namespace mivtx::tcad {

enum class Material { kSilicon, kOxide };

class Mesh {
 public:
  // Grid lines in meters, strictly increasing.
  Mesh(std::vector<double> x_lines, std::vector<double> y_lines);

  std::size_t nx() const { return x_.size(); }
  std::size_t ny() const { return y_.size(); }
  std::size_t num_nodes() const { return nx() * ny(); }
  std::size_t num_cells() const { return (nx() - 1) * (ny() - 1); }

  double x(std::size_t i) const { return x_[i]; }
  double y(std::size_t j) const { return y_[j]; }

  // Node index with y fastest: node(i, j) = i * ny + j.  This ordering
  // bounds the matrix bandwidth by ny (the short direction of the film).
  std::size_t node(std::size_t i, std::size_t j) const {
    return i * ny() + j;
  }
  std::size_t node_i(std::size_t n) const { return n / ny(); }
  std::size_t node_j(std::size_t n) const { return n % ny(); }

  std::size_t cell(std::size_t ci, std::size_t cj) const {
    return ci * (ny() - 1) + cj;
  }

  Material cell_material(std::size_t ci, std::size_t cj) const;
  void set_cell_material(std::size_t ci, std::size_t cj, Material m);

  // A node is a semiconductor node if any adjacent cell is silicon.
  bool node_touches_silicon(std::size_t i, std::size_t j) const;
  // A node is interior-silicon if every adjacent cell is silicon.
  bool node_all_silicon(std::size_t i, std::size_t j) const;

  // Control-volume area of node (i, j) restricted to silicon cells (m^2,
  // per meter of width).
  double silicon_control_area(std::size_t i, std::size_t j) const;
  // Full control-volume area.
  double control_area(std::size_t i, std::size_t j) const;

  // Half-widths of the control volume in each direction.
  double dx_minus(std::size_t i) const { return i == 0 ? 0.0 : 0.5 * (x_[i] - x_[i - 1]); }
  double dx_plus(std::size_t i) const { return i + 1 == nx() ? 0.0 : 0.5 * (x_[i + 1] - x_[i]); }
  double dy_minus(std::size_t j) const { return j == 0 ? 0.0 : 0.5 * (y_[j] - y_[j - 1]); }
  double dy_plus(std::size_t j) const { return j + 1 == ny() ? 0.0 : 0.5 * (y_[j + 1] - y_[j]); }

  // Utility: build a strictly increasing line set by subdividing segments.
  // segments = {(length, cells), ...}; returns lines starting at `origin`.
  static std::vector<double> subdivide(
      double origin, const std::vector<std::pair<double, std::size_t>>& segments);

 private:
  std::vector<double> x_, y_;
  std::vector<Material> cell_materials_;  // per cell, silicon by default
};

}  // namespace mivtx::tcad
