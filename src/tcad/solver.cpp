#include "tcad/solver.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "common/log.h"
#include "common/units.h"
#include "linalg/banded.h"

namespace mivtx::tcad {

namespace {

// Bernoulli function B(x) = x / (exp(x) - 1), overflow-safe.
double bernoulli(double x) {
  const double ax = std::fabs(x);
  if (ax < 1e-10) return 1.0 - 0.5 * x;
  if (ax < 1e-4) return 1.0 - 0.5 * x + x * x / 12.0;
  if (x > 0.0) {
    const double e = std::exp(-x);
    return x * e / (1.0 - e);
  }
  return x / std::expm1(x);
}

// Caughey-Thomas doping-dependent low-field mobility (Si, 300 K), m^2/Vs.
double ct_mobility(bool electrons, double abs_doping) {
  if (electrons) {
    const double mu_min = 6.85e-3, mu_max = 0.1414;
    const double nref = 9.20e22, alpha = 0.711;
    return mu_min + (mu_max - mu_min) /
                        (1.0 + std::pow(abs_doping / nref, alpha));
  }
  const double mu_min = 4.49e-3, mu_max = 4.705e-2;
  const double nref = 2.23e23, alpha = 0.719;
  return mu_min +
         (mu_max - mu_min) / (1.0 + std::pow(abs_doping / nref, alpha));
}

}  // namespace

DeviceSimulator::DeviceSimulator(DeviceSpec spec, GummelOptions opts)
    : spec_(std::move(spec)), opts_(opts), structure_(build_structure(spec_)),
      table_(build_edge_table(structure_)),
      vt_(thermal_voltage(opts.temperature)), ni_(kSiIntrinsicDensity) {}

void DeviceSimulator::reset() { have_state_ = false; }

double DeviceSimulator::contact_psi(ContactKind kind, BiasPoint bias,
                                    double doping) const {
  switch (kind) {
    case ContactKind::kSource:
      return 0.0 + vt_ * std::asinh(doping / (2.0 * ni_));
    case ContactKind::kDrain:
      return bias.vd + vt_ * std::asinh(doping / (2.0 * ni_));
    case ContactKind::kGate:
    case ContactKind::kMiv:
      return bias.vg + spec_.gate_offset;
    case ContactKind::kNone:
      break;
  }
  MIVTX_FAIL("contact_psi on a non-contact node");
}

double DeviceSimulator::edge_mobility(bool electrons, double doping_avg,
                                      double e_parallel) const {
  const double mu0 =
      ct_mobility(electrons, doping_avg) * spec_.mobility_factor;
  const double vsat = electrons ? spec_.vsat_n : spec_.vsat_p;
  if (electrons) {
    const double r = mu0 * e_parallel / vsat;
    return mu0 / std::sqrt(1.0 + r * r);
  }
  return mu0 / (1.0 + mu0 * e_parallel / vsat);
}

double DeviceSimulator::solve_poisson(Solution& sol, BiasPoint bias) const {
  const Mesh& mesh = structure_.mesh;
  const EdgeTable& et = table_;
  const std::size_t nn = mesh.num_nodes();
  const std::size_t bw = mesh.ny();

  // Quasi-Fermi-preserving reference state for the exponential update.
  const linalg::Vector psi0 = sol.psi;
  const linalg::Vector n0 = sol.n;
  const linalg::Vector p0 = sol.p;

  double last_update = 0.0;
  for (int it = 0; it < opts_.max_poisson_newton; ++it) {
    linalg::BandedMatrix jac(nn, bw, bw);
    linalg::Vector rhs(nn, 0.0);  // -F

    for (std::size_t nd = 0; nd < nn; ++nd) {
      const ContactKind ck = structure_.contact[nd];
      if (ck != ContactKind::kNone) {
        jac.set(nd, nd, 1.0);
        rhs[nd] = contact_psi(ck, bias, structure_.doping[nd]) - sol.psi[nd];
        continue;
      }
      const double vsi = et.si_volume[nd];
      if (vsi > 0.0) {
        // Carriers follow the exponential update within this Newton solve.
        const double arg = std::clamp((sol.psi[nd] - psi0[nd]) / vt_, -60.0, 60.0);
        const double n_now = n0[nd] * std::exp(arg);
        const double p_now = p0[nd] * std::exp(-arg);
        // Residual F_i = sum_edges c*(psi_j - psi_i) + q*Vsi*(p - n + N);
        // the assembled matrix is -J (positive diagonal), so rhs = +F.
        const double charge = kElementaryCharge * vsi *
                              (p_now - n_now + structure_.doping[nd]);
        rhs[nd] += charge;
        jac.add(nd, nd, kElementaryCharge * vsi * (p_now + n_now) / vt_);
      }
    }
    for (const Edge& e : et.edges) {
      const bool a_d = structure_.contact[e.a] != ContactKind::kNone;
      const bool b_d = structure_.contact[e.b] != ContactKind::kNone;
      const double flux = e.c_poisson * (sol.psi[e.b] - sol.psi[e.a]);
      if (!a_d) {
        rhs[e.a] += flux;  // +F: flux enters F_a with positive sign
        jac.add(e.a, e.a, e.c_poisson);
        jac.add(e.a, e.b, -e.c_poisson);
      }
      if (!b_d) {
        rhs[e.b] -= flux;
        jac.add(e.b, e.b, e.c_poisson);
        jac.add(e.b, e.a, -e.c_poisson);
      }
    }

    linalg::Vector dpsi = linalg::BandedLU(std::move(jac)).solve(rhs);
    double max_d = 0.0;
    for (std::size_t nd = 0; nd < nn; ++nd) {
      const double d = std::clamp(dpsi[nd], -opts_.newton_clamp,
                                  opts_.newton_clamp);
      sol.psi[nd] += d;
      max_d = std::max(max_d, std::fabs(dpsi[nd]));
    }
    if (it == 0) last_update = max_d;
    if (max_d < 1e-10) break;
  }

  // Commit carriers to the new potential (preserves quasi-Fermi levels).
  for (std::size_t nd = 0; nd < nn; ++nd) {
    if (et.si_volume[nd] <= 0.0) continue;
    const double arg = std::clamp((sol.psi[nd] - psi0[nd]) / vt_, -60.0, 60.0);
    sol.n[nd] = n0[nd] * std::exp(arg);
    sol.p[nd] = p0[nd] * std::exp(-arg);
  }
  return last_update;
}

void DeviceSimulator::solve_continuity(Solution& sol, bool electrons) const {
  const Mesh& mesh = structure_.mesh;
  const EdgeTable& et = table_;
  const std::size_t nn = mesh.num_nodes();
  const std::size_t bw = mesh.ny();
  const double q_sign = electrons ? 1.0 : -1.0;

  linalg::BandedMatrix a(nn, bw, bw);
  linalg::Vector rhs(nn, 0.0);
  linalg::Vector& u = electrons ? sol.n : sol.p;

  const double tau = spec_.tau_srh;

  for (std::size_t nd = 0; nd < nn; ++nd) {
    const bool semi = et.si_volume[nd] > 0.0;
    const ContactKind ck = structure_.contact[nd];
    if (!semi) {
      a.set(nd, nd, 1.0);
      rhs[nd] = 0.0;
      continue;
    }
    if (ck == ContactKind::kSource || ck == ContactKind::kDrain) {
      // Ohmic: charge-neutral equilibrium carrier densities.
      const double dop = structure_.doping[nd];
      const double maj = 0.5 * (std::fabs(dop) +
                                std::sqrt(dop * dop + 4.0 * ni_ * ni_));
      const double minr = ni_ * ni_ / maj;
      const double target = (dop >= 0.0) == electrons ? maj : minr;
      a.set(nd, nd, 1.0);
      rhs[nd] = target;
      continue;
    }
    // SRH recombination, linearized in the solved carrier.
    const double n_old = sol.n[nd], p_old = sol.p[nd];
    const double denom = tau * (n_old + ni_) + tau * (p_old + ni_);
    const double vol = et.si_volume[nd];
    const double other = electrons ? p_old : n_old;
    a.add(nd, nd, vol * other / denom);
    rhs[nd] += vol * ni_ * ni_ / denom;
  }

  for (const Edge& e : et.edges) {
    if (e.si_face <= 0.0) continue;
    const bool a_semi = et.si_volume[e.a] > 0.0;
    const bool b_semi = et.si_volume[e.b] > 0.0;
    if (!a_semi || !b_semi) continue;

    const double u_ab = q_sign * (sol.psi[e.a] - sol.psi[e.b]) / vt_;
    const double epar = std::fabs(sol.psi[e.a] - sol.psi[e.b]) / e.d;
    const double mu = edge_mobility(electrons, e.abs_doping, epar);
    const double g = mu * vt_ * e.si_face / e.d;
    // Flux a->b = g * (u_a * B(u_ab) - u_b * B(-u_ab)).
    const double ba = bernoulli(u_ab);
    const double bb = bernoulli(-u_ab);

    const ContactKind cka = structure_.contact[e.a];
    const ContactKind ckb = structure_.contact[e.b];
    const bool a_free = cka == ContactKind::kNone;
    const bool b_free = ckb == ContactKind::kNone;
    if (a_free) {
      a.add(e.a, e.a, g * ba);
      a.add(e.a, e.b, -g * bb);
    }
    if (b_free) {
      a.add(e.b, e.b, g * bb);
      a.add(e.b, e.a, -g * ba);
    }
  }

  linalg::Vector result = linalg::BandedLU(std::move(a)).solve(rhs);
  for (std::size_t nd = 0; nd < nn; ++nd) {
    if (et.si_volume[nd] <= 0.0) {
      u[nd] = 0.0;
      continue;
    }
    u[nd] = std::max(result[nd], 1.0);  // positivity floor (1 carrier/m^3)
  }
}

Solution DeviceSimulator::solve_equilibrium() {
  const Mesh& mesh = structure_.mesh;
  const EdgeTable& et = table_;
  const std::size_t nn = mesh.num_nodes();

  Solution sol;
  sol.bias = BiasPoint{0.0, 0.0};
  sol.psi.assign(nn, 0.0);
  sol.n.assign(nn, 0.0);
  sol.p.assign(nn, 0.0);

  // Initial guess: local charge-neutral potential.
  for (std::size_t nd = 0; nd < nn; ++nd) {
    if (et.si_volume[nd] > 0.0) {
      sol.psi[nd] = vt_ * std::asinh(structure_.doping[nd] / (2.0 * ni_));
      sol.n[nd] = ni_ * std::exp(sol.psi[nd] / vt_);
      sol.p[nd] = ni_ * std::exp(-sol.psi[nd] / vt_);
    }
  }
  // Equilibrium: quasi-Fermi levels are flat at 0, so repeated Poisson
  // passes (each re-linearizing around the last state) converge to the
  // exact Boltzmann equilibrium.
  double upd = 1.0;
  for (int it = 0; it < opts_.max_gummel && upd > opts_.psi_tol; ++it) {
    upd = solve_poisson(sol, BiasPoint{0.0, 0.0});
    sol.gummel_iterations = it + 1;
  }
  sol.converged = upd <= opts_.psi_tol;
  return sol;
}

Solution DeviceSimulator::solve_single(BiasPoint bias, const Solution* seed) {
  Solution sol = seed ? *seed : solve_equilibrium();
  sol.bias = bias;
  sol.converged = false;

  double upd = 1.0;
  int it = 0;
  for (; it < opts_.max_gummel; ++it) {
    upd = solve_poisson(sol, bias);
    solve_continuity(sol, /*electrons=*/true);
    solve_continuity(sol, /*electrons=*/false);
    if (upd < opts_.psi_tol && it >= 2) break;
  }
  sol.gummel_iterations = it + 1;
  sol.converged = upd < opts_.psi_tol * 10.0 + 1e-12 || upd < opts_.psi_tol;
  if (!sol.converged) {
    MIVTX_WARN << "gummel not converged at vg=" << bias.vg
               << " vd=" << bias.vd << " (update " << upd << " V)";
  }
  return sol;
}

const Solution& DeviceSimulator::solve(BiasPoint bias) {
  if (!have_state_) {
    state_ = solve_equilibrium();
    state_.bias = BiasPoint{0.0, 0.0};
    have_state_ = true;
  }
  const double dvg = bias.vg - state_.bias.vg;
  const double dvd = bias.vd - state_.bias.vd;
  const double span = std::max(std::fabs(dvg), std::fabs(dvd));
  const int steps =
      std::max(1, static_cast<int>(std::ceil(span / opts_.max_bias_step)));
  const BiasPoint from = state_.bias;
  for (int k = 1; k <= steps; ++k) {
    const double f = static_cast<double>(k) / steps;
    const BiasPoint b{from.vg + f * dvg, from.vd + f * dvd};
    state_ = solve_single(b, &state_);
  }
  return state_;
}

double DeviceSimulator::drain_current(const Solution& sol) const {
  const EdgeTable& et = table_;
  double current_per_width = 0.0;  // A per meter of width

  for (const Edge& e : et.edges) {
    if (e.si_face <= 0.0) continue;
    const bool a_drain = structure_.contact[e.a] == ContactKind::kDrain;
    const bool b_drain = structure_.contact[e.b] == ContactKind::kDrain;
    if (a_drain == b_drain) continue;  // internal or contact-contact edge
    // Orient: c = drain contact node, o = interior node.
    const std::size_t c = a_drain ? e.a : e.b;
    const std::size_t o = a_drain ? e.b : e.a;

    const double u = (sol.psi[c] - sol.psi[o]) / vt_;
    const double epar = std::fabs(sol.psi[c] - sol.psi[o]) / e.d;
    const double mun = edge_mobility(true, e.abs_doping, epar);
    const double mup = edge_mobility(false, e.abs_doping, epar);
    const double gn = mun * vt_ * e.si_face / e.d;
    const double gp = mup * vt_ * e.si_face / e.d;
    // Particle fluxes out of the contact node.
    const double phi_n =
        gn * (sol.n[c] * bernoulli(u) - sol.n[o] * bernoulli(-u));
    const double phi_p =
        gp * (sol.p[c] * bernoulli(-u) - sol.p[o] * bernoulli(u));
    current_per_width += kElementaryCharge * (phi_p - phi_n);
  }
  return current_per_width * spec_.w_total;
}

double DeviceSimulator::gate_charge(const Solution& sol) const {
  const EdgeTable& et = table_;
  double q_per_width = 0.0;
  auto is_gate = [&](std::size_t nd) {
    return structure_.contact[nd] == ContactKind::kGate ||
           structure_.contact[nd] == ContactKind::kMiv;
  };
  for (const Edge& e : et.edges) {
    const bool ag = is_gate(e.a), bg = is_gate(e.b);
    if (ag == bg) continue;
    const std::size_t c = ag ? e.a : e.b;
    const std::size_t o = ag ? e.b : e.a;
    q_per_width += e.c_poisson * (sol.psi[c] - sol.psi[o]);
  }
  return q_per_width * spec_.w_total;
}

double DeviceSimulator::total_recombination(const Solution& sol) const {
  const EdgeTable& et = table_;
  double r = 0.0;
  const double tau = spec_.tau_srh;
  for (std::size_t nd = 0; nd < structure_.mesh.num_nodes(); ++nd) {
    const double vol = et.si_volume[nd];
    if (vol <= 0.0) continue;
    const double n = sol.n[nd], p = sol.p[nd];
    r += vol * (n * p - ni_ * ni_) /
         (tau * (n + ni_) + tau * (p + ni_));
  }
  return r * spec_.w_total;
}

}  // namespace mivtx::tcad
