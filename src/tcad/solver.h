// Coupled Poisson / drift-diffusion solver (Gummel iteration).
//
// Numerics:
//   * Nonlinear Poisson per Gummel pass: Newton with the classic
//     quasi-Fermi-preserving exponential update n*exp(dpsi/vt), damped by a
//     per-node update clamp.
//   * Electron/hole continuity: Scharfetter-Gummel fluxes with lagged
//     field-dependent mobility (Caughey-Thomas doping term + velocity
//     saturation) and linearized SRH recombination.
//   * Linear solves: banded LU; natural y-fastest ordering keeps the
//     bandwidth at ny.
//   * Bias continuation: solve() steps contacts in <=100 mV increments from
//     the previous converged solution.
#pragma once

#include <vector>

#include "linalg/vector_ops.h"
#include "tcad/device.h"
#include "tcad/edge_table.h"

namespace mivtx::tcad {

struct BiasPoint {
  double vg = 0.0;  // gate (and MIV) voltage
  double vd = 0.0;  // drain voltage; source at 0
};

struct GummelOptions {
  int max_gummel = 200;
  double psi_tol = 1e-7;        // V, infinity-norm of the Poisson update
  int max_poisson_newton = 100;
  double newton_clamp = 0.10;   // V, per-node Poisson update clamp
  double max_bias_step = 0.10;  // V, continuation step
  double temperature = 300.0;   // K
};

struct Solution {
  bool converged = false;
  int gummel_iterations = 0;
  BiasPoint bias;
  linalg::Vector psi;  // per node (V)
  linalg::Vector n;    // per node (m^-3), zero on oxide nodes
  linalg::Vector p;    // per node (m^-3)
};

class DeviceSimulator {
 public:
  explicit DeviceSimulator(DeviceSpec spec, GummelOptions opts = {});

  const DeviceStructure& structure() const { return structure_; }
  const GummelOptions& options() const { return opts_; }

  // Solve at a bias point, warm-starting from the last converged solution
  // (continuation steps inserted automatically for large bias jumps).
  const Solution& solve(BiasPoint bias);
  // Invalidate the warm-start state (forces re-equilibration).
  void reset();

  // Terminal drain current (A) for the full device width, sign per the
  // applied bias (negative for PMOS-style operation).
  double drain_current(const Solution& sol) const;
  // Total charge on the gate electrode (gate + MIV plates), in coulombs for
  // the full device width.
  double gate_charge(const Solution& sol) const;

  // Sheet conductance diagnostics used by tests.
  double total_recombination(const Solution& sol) const;

 private:
  Solution solve_single(BiasPoint bias, const Solution* seed);
  // Equilibrium (all contacts grounded, Boltzmann carriers).
  Solution solve_equilibrium();
  // One nonlinear Poisson solve with frozen quasi-Fermi structure.
  // Returns the infinity norm of psi change.
  double solve_poisson(Solution& sol, BiasPoint bias) const;
  // Electron / hole continuity update; returns max relative carrier change.
  void solve_continuity(Solution& sol, bool electrons) const;

  double contact_psi(ContactKind kind, BiasPoint bias, double doping) const;
  double edge_mobility(bool electrons, double doping_avg,
                       double e_parallel) const;

  DeviceSpec spec_;
  GummelOptions opts_;
  DeviceStructure structure_;
  EdgeTable table_;
  double vt_;  // thermal voltage
  double ni_;

  bool have_state_ = false;
  Solution state_;
};

}  // namespace mivtx::tcad
