#include "trace/trace.h"

#if defined(MIVTX_TRACE_ENABLED)

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <sstream>
#include <unordered_map>

#include "common/table.h"

namespace mivtx::trace {

namespace internal {

// Single-writer ring: the owning thread pushes, export reads after the
// parallel region quiesced.  `count_` is the total number of pushes; the
// live window is the last min(count, capacity) events.
class ThreadBuffer {
 public:
  ThreadBuffer(std::uint32_t tid, std::size_t capacity, const char* name)
      : slots_(capacity), tid_(tid) {
    std::snprintf(name_, sizeof name_, "%s", name);
  }

  void push(const TraceEvent& ev) {
    const std::uint64_t k = count_.load(std::memory_order_relaxed);
    slots_[k % slots_.size()] = ev;
    count_.store(k + 1, std::memory_order_release);
  }

  std::uint64_t count() const {
    return count_.load(std::memory_order_acquire);
  }
  std::size_t capacity() const { return slots_.size(); }
  std::uint64_t dropped() const {
    const std::uint64_t n = count();
    return n > slots_.size() ? n - slots_.size() : 0;
  }
  std::uint32_t tid() const { return tid_; }
  const char* name() const { return name_; }

  // Oldest-first walk of the live window.
  template <typename Fn>
  void visit(Fn&& fn) const {
    const std::uint64_t n = count();
    const std::uint64_t live = std::min<std::uint64_t>(n, slots_.size());
    for (std::uint64_t k = n - live; k < n; ++k) fn(slots_[k % slots_.size()]);
  }

 private:
  std::vector<TraceEvent> slots_;
  std::atomic<std::uint64_t> count_{0};
  std::uint32_t tid_;
  char name_[32] = {};
};

}  // namespace internal

namespace {

using Clock = std::chrono::steady_clock;

thread_local internal::ThreadBuffer* tl_buffer = nullptr;
thread_local std::uint64_t tl_session = 0;
thread_local std::uint64_t tl_current_span = 0;
thread_local char tl_thread_name[32] = {};

void json_escape(std::string& out, const char* s) {
  for (; *s != '\0'; ++s) {
    const unsigned char c = static_cast<unsigned char>(*s);
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
}

}  // namespace

struct Tracer::Impl {
  mutable std::mutex m;
  std::vector<std::unique_ptr<internal::ThreadBuffer>> buffers;  // by tid
  std::size_t ring_capacity = kDefaultRingCapacity;
  std::uint64_t session = 0;  // bumped by start()/reset()
  Clock::time_point epoch = Clock::now();
  std::atomic<bool> enabled{false};
  std::atomic<std::uint64_t> next_id{1};
  std::size_t registered = 0;  // buffers created this session
};

Tracer::Tracer() : impl_(new Impl) {}
Tracer::~Tracer() { delete impl_; }

Tracer& Tracer::global() {
  static Tracer tracer;
  return tracer;
}

bool Tracer::enabled() const {
  return impl_->enabled.load(std::memory_order_relaxed);
}

void Tracer::start(std::size_t ring_capacity) {
  std::lock_guard<std::mutex> lk(impl_->m);
  impl_->buffers.clear();
  impl_->registered = 0;
  impl_->ring_capacity = ring_capacity == 0 ? 1 : ring_capacity;
  impl_->session += 1;
  impl_->epoch = Clock::now();
  impl_->next_id.store(1, std::memory_order_relaxed);
  impl_->enabled.store(true, std::memory_order_release);
}

void Tracer::stop() {
  impl_->enabled.store(false, std::memory_order_release);
}

void Tracer::reset() {
  std::lock_guard<std::mutex> lk(impl_->m);
  impl_->enabled.store(false, std::memory_order_release);
  impl_->buffers.clear();
  impl_->registered = 0;
  impl_->session += 1;
}

std::int64_t Tracer::now_ns() const {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                              impl_->epoch)
      .count();
}

std::uint64_t Tracer::next_span_id() {
  return impl_->next_id.fetch_add(1, std::memory_order_relaxed);
}

internal::ThreadBuffer* Tracer::buffer_for_current_thread() {
  std::lock_guard<std::mutex> lk(impl_->m);
  if (tl_buffer != nullptr && tl_session == impl_->session) return tl_buffer;
  const std::uint32_t tid = static_cast<std::uint32_t>(impl_->buffers.size());
  char fallback[32];
  const char* name = tl_thread_name;
  if (name[0] == '\0') {
    std::snprintf(fallback, sizeof fallback, "thread-%u", tid);
    name = fallback;
  }
  impl_->buffers.push_back(std::make_unique<internal::ThreadBuffer>(
      tid, impl_->ring_capacity, name));
  impl_->registered += 1;
  tl_buffer = impl_->buffers.back().get();
  tl_session = impl_->session;
  return tl_buffer;
}

std::vector<TraceEvent> Tracer::snapshot() const {
  std::vector<TraceEvent> out;
  {
    std::lock_guard<std::mutex> lk(impl_->m);
    for (const auto& buf : impl_->buffers) {
      buf->visit([&out](const TraceEvent& ev) { out.push_back(ev); });
    }
  }
  std::sort(out.begin(), out.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              return a.start_ns != b.start_ns ? a.start_ns < b.start_ns
                                              : a.id < b.id;
            });
  return out;
}

std::size_t Tracer::event_count() const {
  std::lock_guard<std::mutex> lk(impl_->m);
  std::size_t n = 0;
  for (const auto& buf : impl_->buffers) {
    n += static_cast<std::size_t>(
        std::min<std::uint64_t>(buf->count(), buf->capacity()));
  }
  return n;
}

std::size_t Tracer::dropped_events() const {
  std::lock_guard<std::mutex> lk(impl_->m);
  std::size_t n = 0;
  for (const auto& buf : impl_->buffers)
    n += static_cast<std::size_t>(buf->dropped());
  return n;
}

std::size_t Tracer::buffers_registered() const {
  std::lock_guard<std::mutex> lk(impl_->m);
  return impl_->registered;
}

std::string Tracer::export_chrome_json() const {
  std::string out = "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";
  bool first = true;
  auto sep = [&out, &first] {
    if (!first) out += ',';
    first = false;
  };
  {
    std::lock_guard<std::mutex> lk(impl_->m);
    for (const auto& buf : impl_->buffers) {
      sep();
      out += "{\"ph\":\"M\",\"pid\":1,\"tid\":";
      out += std::to_string(buf->tid());
      out += ",\"name\":\"thread_name\",\"args\":{\"name\":\"";
      json_escape(out, buf->name());
      out += "\"}}";
    }
  }
  char num[64];
  for (const TraceEvent& ev : snapshot()) {
    sep();
    out += "{\"ph\":\"X\",\"pid\":1,\"tid\":";
    out += std::to_string(ev.tid);
    out += ",\"name\":\"";
    json_escape(out, ev.name);
    out += "\",\"cat\":\"";
    json_escape(out, ev.category != nullptr ? ev.category : "mivtx");
    // ts/dur are microseconds in the trace-event format; %.3f keeps the
    // full nanosecond resolution.
    std::snprintf(num, sizeof num, "\",\"ts\":%.3f,\"dur\":%.3f",
                  static_cast<double>(ev.start_ns) * 1e-3,
                  static_cast<double>(ev.dur_ns) * 1e-3);
    out += num;
    out += ",\"args\":{\"id\":";
    out += std::to_string(ev.id);
    out += ",\"parent\":";
    out += std::to_string(ev.parent);
    if (ev.detail[0] != '\0') {
      out += ",\"detail\":\"";
      json_escape(out, ev.detail);
      out += '"';
    }
    for (std::uint32_t a = 0; a < ev.num_args; ++a) {
      out += ",\"";
      json_escape(out, ev.args[a].key);
      std::snprintf(num, sizeof num, "\":%.17g", ev.args[a].value);
      out += num;
    }
    out += "}}";
  }
  out += "]}";
  return out;
}

bool Tracer::write_chrome_json(const std::string& path) const {
  std::ofstream os(path, std::ios::binary);
  if (!os) return false;
  os << export_chrome_json();
  return static_cast<bool>(os.flush());
}

std::string Tracer::render_summary(std::size_t max_rows) const {
  const std::vector<TraceEvent> events = snapshot();
  std::unordered_map<std::uint64_t, std::size_t> index;
  index.reserve(events.size());
  for (std::size_t i = 0; i < events.size(); ++i) index[events[i].id] = i;

  // Logical path of each span: parent chain names joined by ';'.  A parent
  // dropped by ring wrap-around roots the path at "(lost)".
  std::unordered_map<std::uint64_t, std::string> paths;
  paths.reserve(events.size());
  auto path_of = [&](std::uint64_t id, auto&& self) -> const std::string& {
    const auto memo = paths.find(id);
    if (memo != paths.end()) return memo->second;
    const auto it = index.find(id);
    std::string p;
    if (it == index.end()) {
      p = "(lost)";
    } else {
      const TraceEvent& ev = events[it->second];
      if (ev.parent == 0) {
        p = ev.name;
      } else {
        p = self(ev.parent, self) + ";" + ev.name;
      }
    }
    return paths.emplace(id, std::move(p)).first->second;
  };

  struct Agg {
    std::uint64_t count = 0;
    std::int64_t total_ns = 0;
  };
  std::map<std::string, Agg> by_path;
  for (const TraceEvent& ev : events) {
    Agg& a = by_path[path_of(ev.id, path_of)];
    a.count += 1;
    a.total_ns += ev.dur_ns;
  }
  std::vector<std::pair<std::string, Agg>> rows(by_path.begin(),
                                                by_path.end());
  std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
    return a.second.total_ns != b.second.total_ns
               ? a.second.total_ns > b.second.total_ns
               : a.first < b.first;
  });

  TextTable table({"span path", "count", "total ms", "mean us"});
  table.set_align(1, TextTable::Align::kRight);
  table.set_align(2, TextTable::Align::kRight);
  table.set_align(3, TextTable::Align::kRight);
  char buf[64];
  for (std::size_t i = 0; i < rows.size() && i < max_rows; ++i) {
    const Agg& a = rows[i].second;
    std::vector<std::string> cells;
    cells.push_back(rows[i].first);
    cells.push_back(std::to_string(a.count));
    std::snprintf(buf, sizeof buf, "%.3f",
                  static_cast<double>(a.total_ns) * 1e-6);
    cells.push_back(buf);
    std::snprintf(buf, sizeof buf, "%.1f",
                  static_cast<double>(a.total_ns) * 1e-3 /
                      static_cast<double>(a.count));
    cells.push_back(buf);
    table.add_row(std::move(cells));
  }
  std::ostringstream os;
  os << table.to_string();
  if (rows.size() > max_rows) {
    os << "(" << rows.size() - max_rows << " more paths)\n";
  }
  const std::size_t dropped = dropped_events();
  if (dropped > 0) {
    os << "(" << dropped << " events dropped by ring wrap-around)\n";
  }
  return os.str();
}

// --- Span ----------------------------------------------------------------

Span::Span(const char* name, const char* category) {
  Tracer& tracer = Tracer::global();
  if (!tracer.enabled()) return;  // one relaxed load; nothing else
  buffer_ = tracer.buffer_for_current_thread();
  event_.name = name;
  event_.category = category;
  event_.id = tracer.next_span_id();
  event_.parent = tl_current_span;
  event_.tid = buffer_->tid();
  saved_current_ = tl_current_span;
  tl_current_span = event_.id;
  event_.start_ns = tracer.now_ns();
}

Span::Span(const char* name, const char* category, const char* detail)
    : Span(name, category) {
  set_detail(detail);
}

Span::~Span() {
  if (buffer_ == nullptr) return;
  event_.dur_ns = Tracer::global().now_ns() - event_.start_ns;
  tl_current_span = saved_current_;
  buffer_->push(event_);
}

void Span::set_detail(const char* detail) {
  if (buffer_ == nullptr) return;
  std::snprintf(event_.detail, sizeof event_.detail, "%s", detail);
}

void Span::annotate(const char* key, double value) {
  if (buffer_ == nullptr || event_.num_args >= kMaxArgs) return;
  event_.args[event_.num_args++] = {key, value};
}

// --- context propagation --------------------------------------------------

std::uint64_t current_span_id() { return tl_current_span; }

TaskScope::TaskScope(std::uint64_t parent_span) : saved_(tl_current_span) {
  tl_current_span = parent_span;
}

TaskScope::~TaskScope() { tl_current_span = saved_; }

void set_thread_name(const char* name) {
  std::snprintf(tl_thread_name, sizeof tl_thread_name, "%s", name);
}

}  // namespace mivtx::trace

#endif  // MIVTX_TRACE_ENABLED
