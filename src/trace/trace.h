// mivtx::trace — low-overhead hierarchical span tracing with Chrome
// trace-event export.
//
// A Span is an RAII scope that records one completed event (site name,
// start, duration, logical parent, optional numeric annotations) into a
// per-thread ring buffer on destruction.  Design constraints, in order:
//
//   1. Near-zero cost when off.  Recording is gated on one relaxed atomic
//      load; a Span constructed while the tracer is disabled touches no
//      clock, no buffer and performs no allocation.  Building with
//      -DMIVTX_TRACE=OFF compiles Span/TaskScope to empty inline stubs.
//   2. Never blocks, never allocates on the hot path.  Events are
//      fixed-size PODs; each thread owns a single-writer ring buffer
//      (allocated once at registration) that overwrites the oldest event
//      when full and counts the drops.
//   3. Correct nesting across the work-stealing pool.  The logical parent
//      of a span is carried in a thread-local; runtime::TaskGroup captures
//      the submitting thread's current span id and re-establishes it
//      (trace::TaskScope) inside the worker that eventually runs — or
//      steals — the task, so "ppa.cell under flow stage" holds no matter
//      which thread executed what.
//
// Export: Chrome trace-event JSON ("X" complete events; load in Perfetto
// or about://tracing) and a flamegraph-style text summary aggregated by
// span path.  Export assumes quiescence — call it after the parallel
// region (TaskGroup::wait / parallel_for return) completed, never while
// spans are actively being recorded.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace mivtx::trace {

inline constexpr std::size_t kMaxDetail = 47;  // truncating copy
inline constexpr std::size_t kMaxArgs = 8;

// One completed span.  Fixed-size POD: the record path does no heap work.
struct TraceEvent {
  const char* name = nullptr;      // static site name ("ppa.cell", ...)
  const char* category = nullptr;  // static category ("flow", "spice", ...)
  std::uint64_t id = 0;            // span id, unique per tracer session
  std::uint64_t parent = 0;        // logical parent span id; 0 = root
  std::int64_t start_ns = 0;       // since Tracer::start()
  std::int64_t dur_ns = 0;
  std::uint32_t tid = 0;           // buffer registration index
  std::uint32_t num_args = 0;
  char detail[kMaxDetail + 1] = {};  // dynamic detail ("NAND2X1/2ch", ...)
  struct Arg {
    const char* key = nullptr;  // static
    double value = 0.0;
  };
  Arg args[kMaxArgs] = {};
};

#if defined(MIVTX_TRACE_ENABLED)

namespace internal {
class ThreadBuffer;
}

class Tracer {
 public:
  static constexpr std::size_t kDefaultRingCapacity = 1u << 15;

  // Process-wide tracer; benches start it from --trace-out.
  static Tracer& global();

  // Enable recording.  Events timestamp relative to this call; ring
  // capacity applies to buffers registered after it.
  void start(std::size_t ring_capacity = kDefaultRingCapacity);
  // Disable recording; buffers and events are kept for export.
  void stop();
  // Stop and drop every buffer/event.  Requires quiescence (no open spans
  // and no concurrently-recording threads); test/bench teardown helper.
  void reset();

  bool enabled() const;

  // Completed events from every thread, in start-time order.
  std::vector<TraceEvent> snapshot() const;
  std::size_t event_count() const;
  // Events overwritten by ring wrap-around, summed over threads.
  std::size_t dropped_events() const;
  // Ring buffers ever registered this session (test hook: spans recorded
  // while disabled must register none).
  std::size_t buffers_registered() const;

  // Chrome trace-event JSON (https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU):
  // {"displayTimeUnit":"ns","traceEvents":[...]} with one "X" complete
  // event per span (ts/dur in microseconds) plus thread_name metadata.
  // Loads in Perfetto and about://tracing.
  std::string export_chrome_json() const;
  // Write export_chrome_json() to `path`; false on I/O failure.
  bool write_chrome_json(const std::string& path) const;

  // Flamegraph-style text table: spans aggregated by their logical path
  // (root;child;...;leaf), sorted by total wall time.
  std::string render_summary(std::size_t max_rows = 20) const;

  // --- internals shared with Span -------------------------------------
  internal::ThreadBuffer* buffer_for_current_thread();
  std::int64_t now_ns() const;
  std::uint64_t next_span_id();

  Tracer();
  ~Tracer();
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

 private:
  struct Impl;
  Impl* impl_;
};

// RAII span.  Construct on the stack; never heap-allocate spans.
class Span {
 public:
  explicit Span(const char* name, const char* category = "mivtx");
  Span(const char* name, const char* category, const char* detail);
  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  // True when the tracer was enabled at construction (annotations land).
  bool active() const { return buffer_ != nullptr; }
  std::uint64_t id() const { return event_.id; }

  // Truncating copy into the event's detail field.
  void set_detail(const char* detail);
  // Attach a numeric annotation (static key).  Silently ignored when
  // inactive or when kMaxArgs annotations were already attached.
  void annotate(const char* key, double value);

 private:
  internal::ThreadBuffer* buffer_ = nullptr;
  std::uint64_t saved_current_ = 0;
  TraceEvent event_;
};

// Logical span id currently open on this thread (0 = none / disabled).
// Capture at task-submission time, re-establish with TaskScope in the
// thread that runs the task.
std::uint64_t current_span_id();

// RAII: make `parent_span` the logical parent for spans opened on this
// thread until destruction, then restore the previous context.
class TaskScope {
 public:
  explicit TaskScope(std::uint64_t parent_span);
  ~TaskScope();
  TaskScope(const TaskScope&) = delete;
  TaskScope& operator=(const TaskScope&) = delete;

 private:
  std::uint64_t saved_;
};

// Name this thread in trace exports ("worker-3"); truncating copy,
// effective for buffers registered after the call.
void set_thread_name(const char* name);

#else  // !MIVTX_TRACE_ENABLED — inline no-op stubs, zero code generated.

class Tracer {
 public:
  static constexpr std::size_t kDefaultRingCapacity = 1u << 15;
  static Tracer& global() {
    static Tracer t;
    return t;
  }
  void start(std::size_t = kDefaultRingCapacity) {}
  void stop() {}
  void reset() {}
  bool enabled() const { return false; }
  std::vector<TraceEvent> snapshot() const { return {}; }
  std::size_t event_count() const { return 0; }
  std::size_t dropped_events() const { return 0; }
  std::size_t buffers_registered() const { return 0; }
  std::string export_chrome_json() const {
    return "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[]}";
  }
  bool write_chrome_json(const std::string&) const { return false; }
  std::string render_summary(std::size_t = 20) const {
    return "(tracing compiled out: rebuild with -DMIVTX_TRACE=ON)\n";
  }
};

class Span {
 public:
  explicit Span(const char*, const char* = "mivtx") {}
  Span(const char*, const char*, const char*) {}
  bool active() const { return false; }
  std::uint64_t id() const { return 0; }
  void set_detail(const char*) {}
  void annotate(const char*, double) {}
};

inline std::uint64_t current_span_id() { return 0; }

class TaskScope {
 public:
  explicit TaskScope(std::uint64_t) {}
};

inline void set_thread_name(const char*) {}

#endif  // MIVTX_TRACE_ENABLED

}  // namespace mivtx::trace
