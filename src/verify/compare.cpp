#include "verify/compare.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "common/strings.h"

namespace mivtx::verify {
namespace {

// Union of two strictly-increasing time axes (exact-duplicate times merge).
std::vector<double> union_grid(const std::vector<double>& a,
                               const std::vector<double>& b) {
  std::vector<double> out;
  out.reserve(a.size() + b.size());
  std::size_t i = 0, j = 0;
  while (i < a.size() || j < b.size()) {
    double t;
    if (j >= b.size() || (i < a.size() && a[i] <= b[j])) {
      t = a[i++];
      if (j < b.size() && b[j] == t) ++j;
    } else {
      t = b[j++];
    }
    if (out.empty() || t > out.back()) out.push_back(t);
  }
  return out;
}

}  // namespace

SignalDivergence compare_waveforms(const std::string& name,
                                   const waveform::Waveform& a,
                                   const waveform::Waveform& b,
                                   double tolerance) {
  SignalDivergence d;
  d.signal = name;
  const std::vector<double> grid = union_grid(a.times(), b.times());
  d.samples = grid.size();
  double sumsq = 0.0;
  for (const double t : grid) {
    const double delta = std::fabs(a.sample(t) - b.sample(t));
    sumsq += delta * delta;
    if (delta > d.max_abs) {
      d.max_abs = delta;
      d.t_worst = t;
    }
    if (delta > tolerance && t < d.t_first) d.t_first = t;
  }
  if (!grid.empty()) d.rms = std::sqrt(sumsq / static_cast<double>(grid.size()));
  return d;
}

WaveformSetComparison compare_waveform_sets(
    const std::map<std::string, waveform::Waveform>& a,
    const std::map<std::string, waveform::Waveform>& b, double tolerance) {
  WaveformSetComparison cmp;
  cmp.tolerance = tolerance;
  cmp.t_first = std::numeric_limits<double>::infinity();
  for (const auto& [name, wave] : a) {
    const auto it = b.find(name);
    if (it == b.end()) {
      cmp.missing.push_back(name + " (only in A)");
      continue;
    }
    SignalDivergence d = compare_waveforms(name, wave, it->second, tolerance);
    if (d.max_abs > cmp.max_abs) {
      cmp.max_abs = d.max_abs;
      cmp.worst_signal = d.signal;
      cmp.t_worst = d.t_worst;
    }
    cmp.rms = std::max(cmp.rms, d.rms);
    if (d.t_first < cmp.t_first) {
      cmp.t_first = d.t_first;
      cmp.first_signal = d.signal;
    }
    cmp.signals.push_back(std::move(d));
  }
  for (const auto& [name, wave] : b) {
    (void)wave;
    if (a.find(name) == a.end()) cmp.missing.push_back(name + " (only in B)");
  }
  cmp.pass = cmp.missing.empty() && cmp.max_abs <= tolerance;
  if (cmp.first_signal.empty()) cmp.t_first = 0.0;
  return cmp;
}

std::string WaveformSetComparison::summary() const {
  if (!missing.empty())
    return format("signal sets differ (%zu mismatches, first: %s)",
                  missing.size(), missing.front().c_str());
  if (pass)
    return format("max |dv| %.3e over %zu signals (tol %.1e)", max_abs,
                  signals.size(), tolerance);
  return format("diverged: %s first exceeds %.1e at t = %s "
                "(worst %.3e on %s at t = %s)",
                first_signal.c_str(), tolerance,
                eng_format(t_first, "s").c_str(), max_abs,
                worst_signal.c_str(), eng_format(t_worst, "s").c_str());
}

WaveformSetComparison compare_transients(const spice::TransientResult& a,
                                         const spice::TransientResult& b,
                                         double tolerance) {
  std::map<std::string, waveform::Waveform> ma, mb;
  for (const auto& [node, w] : a.node_voltage) ma["V(" + node + ")"] = w;
  for (const auto& [el, w] : a.branch_current) ma["I(" + el + ")"] = w;
  for (const auto& [node, w] : b.node_voltage) mb["V(" + node + ")"] = w;
  for (const auto& [el, w] : b.branch_current) mb["I(" + el + ")"] = w;
  return compare_waveform_sets(ma, mb, tolerance);
}

SolutionComparison compare_solutions(const spice::Circuit& circuit,
                                     const linalg::Vector& a,
                                     const linalg::Vector& b,
                                     double tolerance) {
  MIVTX_EXPECT(a.size() == b.size(), "compare_solutions: size mismatch");
  SolutionComparison cmp;
  cmp.tolerance = tolerance;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double delta = std::fabs(a[i] - b[i]);
    if (delta > cmp.max_abs) {
      cmp.max_abs = delta;
      cmp.worst_index = i;
    }
  }
  if (a.size() > 0 && cmp.max_abs > 0.0)
    cmp.worst_unknown = circuit.unknown_name(cmp.worst_index);
  cmp.pass = cmp.max_abs <= tolerance;
  return cmp;
}

}  // namespace mivtx::verify
