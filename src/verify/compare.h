// Divergence measurement between simulation results.
//
// All comparisons interpolate onto the union of the two time grids, so two
// adaptive-step runs that placed their steps differently are compared at
// every instant either run considered interesting.  Every comparison
// localizes the *first* point the divergence exceeded the tolerance (time
// plus signal / MNA-unknown name via Circuit::unknown_name) so a failing
// cross-backend run points at a debuggable instant, not just a norm.
#pragma once

#include <limits>
#include <map>
#include <string>
#include <vector>

#include "linalg/dense.h"
#include "spice/circuit.h"
#include "spice/transient.h"
#include "waveform/waveform.h"

namespace mivtx::verify {

// Divergence of one signal pair over the union grid.
struct SignalDivergence {
  std::string signal;
  double max_abs = 0.0;  // max_t |a(t) - b(t)|
  double rms = 0.0;      // sqrt(mean over union samples)
  double t_worst = 0.0;  // time of max_abs
  // First union-grid time the pointwise divergence exceeded the tolerance;
  // +inf when it never did.
  double t_first = std::numeric_limits<double>::infinity();
  std::size_t samples = 0;
};

SignalDivergence compare_waveforms(const std::string& name,
                                   const waveform::Waveform& a,
                                   const waveform::Waveform& b,
                                   double tolerance);

// A set of named waveforms (e.g. every node voltage of a transient run)
// against another set.  Signals present in only one set are a failure in
// themselves (a backend dropped or renamed an output).
struct WaveformSetComparison {
  bool pass = true;
  double tolerance = 0.0;
  double max_abs = 0.0;
  double rms = 0.0;  // worst per-signal RMS
  std::string worst_signal;
  double t_worst = 0.0;
  // Earliest first-divergence over all signals; empty signal = none.
  std::string first_signal;
  double t_first = 0.0;
  std::vector<SignalDivergence> signals;
  std::vector<std::string> missing;  // present in one set only

  std::string summary() const;  // one line, for reports/log lines
};

WaveformSetComparison compare_waveform_sets(
    const std::map<std::string, waveform::Waveform>& a,
    const std::map<std::string, waveform::Waveform>& b, double tolerance);

// Full transient-result comparison: node voltages as "V(node)", branch
// currents as "I(element)", in one set.
WaveformSetComparison compare_transients(const spice::TransientResult& a,
                                         const spice::TransientResult& b,
                                         double tolerance);

// DC solution vectors, localized to the worst MNA unknown by name.
struct SolutionComparison {
  bool pass = true;
  double tolerance = 0.0;
  double max_abs = 0.0;
  std::string worst_unknown;
  std::size_t worst_index = 0;
};

SolutionComparison compare_solutions(const spice::Circuit& circuit,
                                     const linalg::Vector& a,
                                     const linalg::Vector& b,
                                     double tolerance);

}  // namespace mivtx::verify
