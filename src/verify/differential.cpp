#include "verify/differential.h"

#include <algorithm>
#include <cmath>

#include "cells/circuitgen.h"
#include "common/error.h"
#include "common/strings.h"
#include "core/ppa.h"
#include "runtime/artifact_cache.h"
#include "spice/parser.h"

namespace mivtx::verify {
namespace {

// Tolerances tight enough that the cross-config comparison measures the
// solver core, not Newton slack (same settings the backend-equivalence
// tests pin).
spice::NewtonOptions strict_newton(const SolverConfig& cfg) {
  spice::NewtonOptions o;
  o.backend = cfg.backend;
  if (cfg.bypass_vtol == 0.0) {
    o.vtol = 1e-12;
    o.reltol = 1e-9;
    o.itol = 1e-15;
    o.residual_tol = 1e-9;
  }
  // else: the bypass cache's error floor sits above the strict tolerances
  // (Newton could never settle), so the bypass axis runs at the stock
  // production settings it ships with — that is the contract it verifies.
  o.bypass_vtol = cfg.bypass_vtol;
  o.reuse_factorization = cfg.reuse_factorization;
  o.device_eval = cfg.device_eval;
  o.linear_solver = cfg.linear_solver;
  // Krylov solves must land well inside the cross-config comparison bound;
  // the budget is generous because a budget miss silently reroutes to the
  // direct ladder and the comparison would stop measuring the Krylov path.
  o.iterative_rtol = 1e-12;
  o.iterative_max_iterations = 2000;
  return o;
}

struct CaseRun {
  bool ok = false;
  std::string error;
  linalg::Vector dcop_x;
  spice::TransientResult tran;
};

CaseRun run_case(const DiffCase& c, const SolverConfig& cfg) {
  CaseRun run;
  const spice::NewtonOptions newton = strict_newton(cfg);
  if (c.run_dcop) {
    const spice::DcResult dc = spice::dc_operating_point(c.circuit, newton);
    if (!dc.converged) {
      run.error = format("dcop failed to converge (strategy %s)",
                         dc.strategy.c_str());
      return run;
    }
    run.dcop_x = dc.x;
  }
  if (c.run_transient) {
    spice::TransientOptions topt;
    topt.t_stop = c.t_stop;
    topt.h_max = c.h_max;
    topt.newton = newton;
    run.tran = spice::transient(c.circuit, topt);
    if (!run.tran.ok) {
      run.error = format("transient failed: %s", run.tran.error.c_str());
      return run;
    }
  }
  run.ok = true;
  return run;
}

}  // namespace

std::vector<SolverConfig> default_solver_matrix() {
  using spice::DeviceEval;
  std::vector<SolverConfig> m;
  m.push_back({"dense", spice::SolverBackend::kDense, true, 0.0,
               DeviceEval::kScalar, 0.0});
  m.push_back({"sparse", spice::SolverBackend::kSparse, true, 0.0,
               DeviceEval::kScalar, 0.0});
  // Ladder cross-check: every solve runs a fresh full factorization, so
  // the reuse/refactorize rungs are measured against the scratch path.
  m.push_back({"sparse-fullfactor", spice::SolverBackend::kSparse, false, 0.0,
               DeviceEval::kScalar, 0.0});
  // Production bypass tolerance: approximate by design, and it runs at the
  // stock Newton settings (see strict_newton), so its bound covers both the
  // cache error floor and stock-vs-strict step-grid differences.
  m.push_back({"sparse-bypass", spice::SolverBackend::kSparse, true, 1e-9,
               DeviceEval::kScalar, 1e-4});
  // Batched SIMD device kernel vs the scalar reference at the exact
  // tolerance: the kernel is a transliteration of the same math, so it
  // must hold the 1e-9 cross-config bound with no special casing.
  m.push_back({"sparse-simd", spice::SolverBackend::kSparse, true, 0.0,
               DeviceEval::kSimd, 0.0});
  // SIMD + bypass at the production settings: the full production fast
  // path against the dense scalar reference.
  m.push_back({"simd-bypass", spice::SolverBackend::kSparse, true, 1e-9,
               DeviceEval::kSimd, 1e-4});
  // Pinned BiCGStab on cell-sized systems: the Krylov tier against the
  // dense reference far below its crossover.  Iterative dx steps walk a
  // slightly different Newton path (and transient step grid), so the lane
  // runs at the production iterative tolerance rather than the exact one.
  m.push_back({"sparse-bicgstab", spice::SolverBackend::kSparse, true, 0.0,
               DeviceEval::kScalar, 1e-6, spice::LinearSolver::kBicgstab});
  return m;
}

std::vector<SolverConfig> iterative_solver_matrix(bool pin_cg) {
  using spice::DeviceEval;
  using spice::LinearSolver;
  std::vector<SolverConfig> m;
  // Reference: the direct sparse LU ladder.  Device evaluation stays on
  // kAuto for every lane — the axis under test is the linear solver, and
  // the big corpora would pay thousands of needless scalar evals.
  m.push_back({"sparse-direct", spice::SolverBackend::kSparse, true, 0.0,
               DeviceEval::kAuto, 0.0, LinearSolver::kDirect});
  m.push_back({"sparse-auto", spice::SolverBackend::kSparse, true, 0.0,
               DeviceEval::kAuto, 1e-6, LinearSolver::kAuto});
  m.push_back({"sparse-bicgstab", spice::SolverBackend::kSparse, true, 0.0,
               DeviceEval::kAuto, 1e-6, LinearSolver::kBicgstab});
  if (pin_cg) {
    m.push_back({"sparse-cg", spice::SolverBackend::kSparse, true, 0.0,
                 DeviceEval::kAuto, 1e-6, LinearSolver::kCg});
  }
  return m;
}

DiffCase make_cell_case(cells::CellType type, cells::Implementation impl,
                        const core::ModelLibrary& library) {
  const core::PpaEngine engine(library);
  cells::CellNetlist cell = cells::build_cell(
      type, impl, engine.model_set(impl), cells::ParasiticSpec{}, 1.0);
  const std::vector<std::string> inputs = cells::cell_input_names(type);
  const auto side = core::PpaEngine::sensitize(type, 0);
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    spice::Element& src = cell.circuit.element("V" + inputs[i]);
    if (i == 0) {
      spice::PulseSpec p;
      p.v1 = 0.0;
      p.v2 = 1.0;
      p.delay = 20e-12;
      p.rise = 20e-12;
      p.fall = 20e-12;
      p.width = 100e-12;
      src.source = spice::SourceSpec::Pulse(p);
    } else {
      src.source =
          spice::SourceSpec::DC(side.has_value() && (*side)[i] ? 1.0 : 0.0);
    }
  }
  DiffCase c;
  c.name = format("%s/%s", cells::cell_name(type), cells::impl_name(impl));
  c.circuit = std::move(cell.circuit);
  c.t_stop = 1e-10;  // covers the rising input edge
  return c;
}

std::vector<DiffCase> cell_corpus(const core::ModelLibrary& library) {
  std::vector<DiffCase> cases;
  for (const cells::CellType type : cells::all_cells())
    for (const cells::Implementation impl : cells::all_implementations())
      cases.push_back(make_cell_case(type, impl, library));
  return cases;
}

DiffCase make_power_grid_case(std::size_t rows, std::size_t cols) {
  cells::PowerGridSpec spec;
  spec.rows = rows;
  spec.cols = cols;
  cells::GeneratedCircuit gen = cells::build_power_grid(spec);
  DiffCase c;
  c.name = gen.name;
  c.circuit = std::move(gen.circuit);
  c.run_transient = false;
  return c;
}

DiffCase make_adder_case(std::size_t bits, cells::Implementation impl,
                         const core::ModelLibrary& library) {
  const core::PpaEngine engine(library);
  cells::GeneratedCircuit gen =
      cells::build_adder_array(bits, impl, engine.model_set(impl),
                               cells::ParasiticSpec{}, 1.0);
  DiffCase c;
  c.name = gen.name;
  c.circuit = std::move(gen.circuit);
  c.run_transient = false;
  return c;
}

DiffCase make_ring_case(std::size_t stages, cells::Implementation impl,
                        const core::ModelLibrary& library) {
  const core::PpaEngine engine(library);
  cells::GeneratedCircuit gen =
      cells::build_ring_oscillator(stages, impl, engine.model_set(impl),
                                   cells::ParasiticSpec{}, 1.0);
  DiffCase c;
  c.name = gen.name;
  c.circuit = std::move(gen.circuit);
  c.run_transient = false;
  return c;
}

DiffCase netlist_case(const std::string& name, const std::string& text,
                      double default_t_stop) {
  const spice::ParsedNetlist parsed = spice::parse_netlist(text);
  DiffCase c;
  c.name = name;
  c.circuit = parsed.circuit;
  c.t_stop = default_t_stop;
  for (const std::string& d : parsed.directives) {
    const auto arg = split(d, " \t");
    if (!arg.empty() && equals_ci(arg[0], ".tran") && arg.size() >= 3)
      c.t_stop = parse_spice_number(arg[2]);
  }
  return c;
}

std::string CaseConfigReport::summary() const {
  if (!error.empty())
    return format("%s/%s: ERROR %s", case_name.c_str(), config_name.c_str(),
                  error.c_str());
  std::string out = format("%s/%s: %s", case_name.c_str(), config_name.c_str(),
                           ok ? "ok" : "FAIL");
  out += format(" dcop %.3e", dcop.max_abs);
  if (!dcop.pass)
    out += format(" (worst unknown %s)", dcop.worst_unknown.c_str());
  out += ", tran " + transient.summary();
  return out;
}

DiffReport run_differential(const std::vector<DiffCase>& cases,
                            const DiffOptions& opts) {
  MIVTX_EXPECT(!opts.matrix.empty(), "differential: empty solver matrix");
  DiffReport report;
  report.cases = cases.size();

  // Each case runs the whole matrix in one task (reference + comparisons),
  // so fan-out across cases is embarrassingly parallel and index-ordered.
  const std::vector<std::vector<CaseConfigReport>> per_case =
      runtime::parallel_map<std::vector<CaseConfigReport>>(
          opts.pool, cases.size(), [&](std::size_t idx) {
            const DiffCase& c = cases[idx];
            std::vector<CaseConfigReport> out;
            const CaseRun ref = run_case(c, opts.matrix[0]);
            for (std::size_t k = 1; k < opts.matrix.size(); ++k) {
              const SolverConfig& cfg = opts.matrix[k];
              CaseConfigReport r;
              r.case_name = c.name;
              r.config_name =
                  format("%s-vs-%s", opts.matrix[0].name.c_str(),
                         cfg.name.c_str());
              r.tolerance =
                  cfg.tolerance > 0.0 ? cfg.tolerance : opts.tolerance;
              if (!ref.ok) {
                r.error = "reference " + opts.matrix[0].name + ": " + ref.error;
                out.push_back(std::move(r));
                continue;
              }
              const CaseRun run = run_case(c, cfg);
              if (!run.ok) {
                r.error = cfg.name + ": " + run.error;
                out.push_back(std::move(r));
                continue;
              }
              r.ok = true;
              if (c.run_dcop) {
                r.dcop = compare_solutions(c.circuit, ref.dcop_x, run.dcop_x,
                                           r.tolerance);
                r.ok = r.ok && r.dcop.pass;
              }
              if (c.run_transient) {
                r.transient =
                    compare_transients(ref.tran, run.tran, r.tolerance);
                r.ok = r.ok && r.transient.pass;
              }
              out.push_back(std::move(r));
            }
            return out;
          });

  for (const auto& vec : per_case) {
    for (const CaseConfigReport& r : vec) {
      report.comparisons += 1;
      const double worst = std::max(r.dcop.max_abs, r.transient.max_abs);
      if (worst > report.worst_divergence) {
        report.worst_divergence = worst;
        report.worst_case = r.case_name + "/" + r.config_name;
      }
      if (!r.ok) {
        report.failures += 1;
        report.pass = false;
      }
      report.reports.push_back(r);
    }
  }
  return report;
}

namespace {

bool bit_equal(double a, double b) {
  // Bit-identity contract: +-0 and NaN payloads are out of scope here,
  // exact == on the measured doubles is the right comparison.
  return a == b;
}

std::string compare_ppa(const core::CellPpa& a, const core::CellPpa& b,
                        const char* axis) {
  if (a.ok != b.ok)
    return format("%s: ok flag differs (%d vs %d)", axis, a.ok, b.ok);
  if (!bit_equal(a.delay, b.delay))
    return format("%s: delay differs by %.3e s", axis,
                  std::fabs(a.delay - b.delay));
  if (!bit_equal(a.power, b.power))
    return format("%s: power differs by %.3e W", axis,
                  std::fabs(a.power - b.power));
  if (!bit_equal(a.area, b.area)) return format("%s: area differs", axis);
  if (!bit_equal(a.pdp, b.pdp)) return format("%s: pdp differs", axis);
  if (a.arcs.size() != b.arcs.size())
    return format("%s: arc count %zu vs %zu", axis, a.arcs.size(),
                  b.arcs.size());
  for (std::size_t i = 0; i < a.arcs.size(); ++i) {
    if (a.arcs[i].pin != b.arcs[i].pin ||
        a.arcs[i].input_rising != b.arcs[i].input_rising ||
        !bit_equal(a.arcs[i].delay, b.arcs[i].delay))
      return format("%s: arc %zu (%s) differs", axis, i,
                    a.arcs[i].pin.c_str());
  }
  return {};
}

}  // namespace

PpaDiffReport run_ppa_differential(const core::ModelLibrary& library,
                                   const PpaDiffOptions& opts) {
  PpaDiffReport report;

  std::vector<std::pair<cells::CellType, cells::Implementation>> pairs;
  for (const cells::CellType type : cells::all_cells())
    for (const cells::Implementation impl : cells::all_implementations())
      pairs.emplace_back(type, impl);
  if (opts.max_cells > 0 && pairs.size() > opts.max_cells)
    pairs.resize(opts.max_cells);
  report.cells = pairs.size();

  // Serial reference: no pool, no cache.
  const core::PpaEngine serial(library);
  // Parallel engine with a cold in-memory cache; a third pass over the same
  // engine must be served from the warm cache and still read back
  // bit-identical.
  runtime::ThreadPool pool(opts.jobs);
  runtime::ArtifactCache cache;
  const core::PpaEngine parallel(library, {}, {},
                                 {pool.size() > 1 ? &pool : nullptr, &cache});

  for (const auto& [type, impl] : pairs) {
    PpaEquivalence row;
    row.cell = format("%s/%s", cells::cell_name(type), cells::impl_name(impl));
    const core::CellPpa ref = serial.measure(type, impl);
    const std::uint64_t hits_before = cache.stats().hits;
    const core::CellPpa cold = parallel.measure(type, impl);
    const core::CellPpa warm = parallel.measure(type, impl);
    row.detail = compare_ppa(ref, cold, "1-vs-N-threads");
    if (row.detail.empty())
      row.detail = compare_ppa(cold, warm, "cold-vs-warm-cache");
    if (row.detail.empty() && cache.stats().hits <= hits_before)
      row.detail = "cold-vs-warm-cache: warm re-measure never hit the cache";
    row.ok = row.detail.empty();
    if (!row.ok) {
      report.failures += 1;
      report.pass = false;
    }
    report.rows.push_back(std::move(row));
  }
  return report;
}

}  // namespace mivtx::verify
