// Differential engine: run the same circuit through a matrix of solver
// configurations and demand agreement to a declared tolerance.
//
// Two layers:
//   - run_differential: per-netlist solver matrix (dense vs sparse, the
//     factorization-ladder rungs on/off, device-bypass cache on/off) over
//     the DC operating point and the transient waveforms, compared against
//     the first (reference) configuration with first-divergence
//     localization from verify/compare.h.
//   - run_ppa_differential: flow-level axes the per-netlist matrix cannot
//     see — 1 vs N worker threads and cold vs warm artifact cache on the
//     PPA engine, which the runtime contract requires to be BIT-identical,
//     not merely within tolerance.
//
// Case sources: the 14 standard cells x 4 implementations under the
// paper's stimulus (cell_corpus), or any parsed netlist (netlist_case,
// honoring a `.tran` directive for the time window).
#pragma once

#include <string>
#include <vector>

#include "cells/netgen.h"
#include "core/flow.h"
#include "runtime/thread_pool.h"
#include "spice/dcop.h"
#include "spice/transient.h"
#include "verify/compare.h"

namespace mivtx::verify {

// One named solver configuration of the comparison matrix.
struct SolverConfig {
  std::string name;
  spice::SolverBackend backend = spice::SolverBackend::kSparse;
  bool reuse_factorization = true;  // ladder rungs 1-2 (reuse/refactorize)
  double bypass_vtol = 0.0;         // MOSFET bypass cache; 0 = exact only
  // Device-evaluation axis: the matrix pins kScalar on the legacy configs
  // so the batched SIMD kernel is measured against the per-device
  // reference, not against itself.
  spice::DeviceEval device_eval = spice::DeviceEval::kScalar;
  // Per-config tolerance override; 0 picks DiffOptions::tolerance.  The
  // bypass-cache axis trades exactness for speed by design, so it ships
  // with a looser bound.
  double tolerance = 0.0;
  // Linear-solve method within the sparse backend: the iterative-tier
  // configs pin kCg/kBicgstab so the Krylov path is measured against the
  // direct-LU reference even below the kAuto crossover.
  spice::LinearSolver linear_solver = spice::LinearSolver::kAuto;
};

// dense (reference), sparse, sparse with the reuse ladder disabled, sparse
// with the device-bypass cache at its production tolerance, the batched
// SIMD device kernel at exact tolerance, and SIMD + bypass at the
// production tolerance.
std::vector<SolverConfig> default_solver_matrix();

// Direct-vs-iterative matrix for the large-circuit corpus: sparse direct
// LU as the reference, then the kAuto crossover and a pinned BiCGStab
// lane (valid on any MNA Jacobian).  `pin_cg` adds a pinned-CG lane — use
// it only on corpora whose assembled Jacobians are symmetric (the
// power-grid meshes); CG's short recurrence is meaningless on a general
// nonsymmetric system.
std::vector<SolverConfig> iterative_solver_matrix(bool pin_cg = false);

// One circuit + analysis window to push through the matrix.
struct DiffCase {
  std::string name;
  spice::Circuit circuit;
  double t_stop = 1e-10;
  double h_max = 0.0;        // 0 = transient default
  bool run_dcop = true;
  bool run_transient = true;
};

// The paper's stimulus for one (cell, implementation): rising pulse on the
// first input, sensitizing side-input levels on the rest.
DiffCase make_cell_case(cells::CellType type, cells::Implementation impl,
                        const core::ModelLibrary& library);
// All 14 cells x 4 implementations.
std::vector<DiffCase> cell_corpus(const core::ModelLibrary& library);
// Parse netlist text into a case; a `.tran <print> <t_stop>` directive sets
// the window, otherwise `default_t_stop`.  Throws mivtx::Error on parse
// failure.
DiffCase netlist_case(const std::string& name, const std::string& text,
                      double default_t_stop = 1e-6);

// Large-circuit cases for the iterative solver tier (cells/circuitgen.h).
// DC-only: the point is the linear-solver core at scale, and a transient
// would multiply runtime without adding solver coverage.  The power grid
// assembles a symmetric (SPD) Jacobian, the adder and ring are general
// MNA systems with thousands of BSIMSOI devices.
DiffCase make_power_grid_case(std::size_t rows, std::size_t cols);
DiffCase make_adder_case(std::size_t bits, cells::Implementation impl,
                         const core::ModelLibrary& library);
DiffCase make_ring_case(std::size_t stages, cells::Implementation impl,
                        const core::ModelLibrary& library);

struct DiffOptions {
  double tolerance = 1e-9;
  std::vector<SolverConfig> matrix = default_solver_matrix();
  // Fan independent cases out across workers (results are index-ordered
  // and identical for any pool size).
  runtime::ThreadPool* pool = nullptr;
};

// One (case, config) comparison against the reference config.
struct CaseConfigReport {
  std::string case_name;
  std::string config_name;
  bool ok = false;
  std::string error;  // solver failure, not divergence
  double tolerance = 0.0;
  SolutionComparison dcop;
  WaveformSetComparison transient;
  std::string summary() const;
};

struct DiffReport {
  bool pass = true;
  std::size_t cases = 0;
  std::size_t comparisons = 0;
  std::size_t failures = 0;
  double worst_divergence = 0.0;
  std::string worst_case;  // "case/config"
  std::vector<CaseConfigReport> reports;
};

DiffReport run_differential(const std::vector<DiffCase>& cases,
                            const DiffOptions& opts = {});

// Flow-level equivalence of one cell measurement across scheduling axes.
struct PpaEquivalence {
  std::string cell;  // "NAND2X1/miv-1ch"
  bool ok = false;
  std::string detail;  // which axis broke and how
};

struct PpaDiffOptions {
  std::size_t jobs = 4;  // the "N" of 1-vs-N
  // Restrict to the first `max_cells` (cell, impl) pairs; 0 = all 56.
  std::size_t max_cells = 0;
};

struct PpaDiffReport {
  bool pass = true;
  std::size_t cells = 0;
  std::size_t failures = 0;
  std::vector<PpaEquivalence> rows;
};

PpaDiffReport run_ppa_differential(const core::ModelLibrary& library,
                                   const PpaDiffOptions& opts = {});

}  // namespace mivtx::verify
