#include "verify/fuzz.h"

#include <algorithm>
#include <vector>

#include <cmath>

#include "analyze/analyzer.h"
#include "analyze/design.h"
#include "charlib/library.h"
#include "common/error.h"
#include "common/strings.h"
#include "lint/circuit_rules.h"
#include "spice/dcop.h"
#include "spice/parser.h"
#include "spice/transient.h"

namespace mivtx::verify {
namespace {

// splitmix64: enough state-space for text mutation, fully deterministic.
struct SplitMix {
  std::uint64_t s;
  std::uint64_t next() {
    std::uint64_t z = (s += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }
  std::size_t below(std::size_t n) {
    return n == 0 ? 0 : static_cast<std::size_t>(next() % n);
  }
};

std::vector<std::string> split_lines(const std::string& s) {
  std::vector<std::string> lines;
  std::size_t start = 0;
  while (start <= s.size()) {
    const std::size_t nl = s.find('\n', start);
    if (nl == std::string::npos) {
      lines.push_back(s.substr(start));
      break;
    }
    lines.push_back(s.substr(start, nl - start));
    start = nl + 1;
  }
  return lines;
}

std::string join(const std::vector<std::string>& parts,
                 const std::string& sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

// Exception filter: mivtx::Error anywhere in the pipeline is a diagnosis
// (the contract this harness enforces); anything else escapes to the test.
template <typename Fn>
bool diagnosed(Fn&& fn, std::string& detail) {
  try {
    fn();
    return false;
  } catch (const Error& e) {
    detail = e.what();
    return true;
  }
}

}  // namespace

FuzzResult exercise_netlist(const std::string& text) {
  FuzzResult result;

  spice::ParsedNetlist parsed;
  if (diagnosed([&] { parsed = spice::parse_netlist(text); }, result.detail)) {
    result.outcome = FuzzOutcome::kParseRejected;
    return result;
  }

  lint::DiagnosticSink sink;
  if (diagnosed([&] { lint::lint_netlist(parsed, sink); }, result.detail)) {
    // Lint throwing (rather than reporting) still counts as a structured
    // rejection, but is unusual enough to flag in the detail string.
    result.outcome = FuzzOutcome::kLintRejected;
    result.detail = "lint threw: " + result.detail;
    return result;
  }
  if (sink.has_errors()) {
    result.outcome = FuzzOutcome::kLintRejected;
    result.detail = lint::render_text(sink.diagnostics());
    return result;
  }

  // Lint found nothing fatal: the solver must now either converge or say
  // why not — never crash.  presolve_lint stays on (default) so structural
  // singularities surface as strategy "lint".
  spice::DcResult dc;
  if (diagnosed([&] { dc = spice::dc_operating_point(parsed.circuit); },
                result.detail)) {
    result.outcome = FuzzOutcome::kNoConverge;
    result.detail = "dcop threw: " + result.detail;
    return result;
  }
  if (!dc.converged) {
    result.outcome = FuzzOutcome::kNoConverge;
    result.detail = format("dcop did not converge (strategy %s)",
                           dc.strategy.c_str());
    return result;
  }

  // Capped transient: adversarial decks must not stall the suite, so both
  // the horizon and the step budget are tiny.
  spice::TransientOptions topt;
  topt.t_stop = 1e-9;
  topt.max_steps = 2000;
  spice::TransientResult tr;
  if (diagnosed([&] { tr = spice::transient(parsed.circuit, topt); },
                result.detail)) {
    result.outcome = FuzzOutcome::kNoConverge;
    result.detail = "transient threw: " + result.detail;
    return result;
  }
  if (!tr.ok) {
    result.outcome = FuzzOutcome::kNoConverge;
    result.detail = "transient: " + tr.error;
    return result;
  }
  result.outcome = FuzzOutcome::kSolved;
  return result;
}

namespace {

// Inside, at, and beyond the hull on one axis — the clamp paths included.
std::vector<double> probe_points(const std::vector<double>& axis) {
  const double lo = axis.front(), hi = axis.back();
  const double span = hi > lo ? hi - lo : 1.0;
  return {lo - span, lo, 0.5 * (lo + hi), hi, hi + span};
}

}  // namespace

FuzzResult exercise_library(const std::string& text) {
  FuzzResult result;
  charlib::CharLibrary lib;
  if (diagnosed([&] { lib = charlib::CharLibrary::from_text(text); },
                result.detail)) {
    result.outcome = FuzzOutcome::kParseRejected;
    return result;
  }
  // The parser accepted it: everything stored must now behave.  A
  // violation here is a parser/interpolator bug, reported as kNoConverge
  // so tests can distinguish it from a legitimate rejection.
  if (diagnosed(
          [&] {
            for (const auto& [impl, cells] : lib.cells) {
              (void)impl;
              for (const auto& [type, cell] : cells) {
                (void)type;
                for (const charlib::ArcTables& arc : cell.arcs) {
                  for (const double s : probe_points(lib.slew_axis)) {
                    for (const double l : probe_points(lib.load_axis)) {
                      for (const charlib::Table2D* t :
                           {&arc.delay, &arc.out_slew, &arc.energy}) {
                        const charlib::LookupResult v = t->lookup(s, l);
                        MIVTX_EXPECT(std::isfinite(v.value),
                                     "charlib: non-finite interpolation");
                      }
                    }
                  }
                }
              }
            }
            const charlib::CharLibrary back =
                charlib::CharLibrary::from_text(lib.to_text());
            MIVTX_EXPECT(back.to_text() == lib.to_text(),
                         "charlib: to_text round-trip is not byte-stable");
          },
          result.detail)) {
    result.outcome = FuzzOutcome::kNoConverge;
    return result;
  }
  result.outcome = FuzzOutcome::kSolved;
  return result;
}

FuzzResult exercise_design(const std::string& design_text,
                           const std::string& library_text) {
  FuzzResult result;
  charlib::CharLibrary lib;
  if (diagnosed([&] { lib = charlib::CharLibrary::from_text(library_text); },
                result.detail)) {
    result.outcome = FuzzOutcome::kParseRejected;
    result.detail = "library: " + result.detail;
    return result;
  }
  lint::DiagnosticSink sink;
  analyze::Design design;
  if (diagnosed([&] { design = analyze::parse_design(design_text, sink); },
                result.detail)) {
    result.outcome = FuzzOutcome::kParseRejected;
    return result;
  }
  analyze::AnalyzeReport report;
  if (diagnosed(
          [&] {
            analyze::AnalyzeOptions opts;
            opts.library = &lib;
            report = analyze::analyze_design(
                design, analyze::default_timing_model(), opts);
          },
          result.detail)) {
    result.outcome = FuzzOutcome::kNoConverge;
    result.detail = "analyze threw: " + result.detail;
    return result;
  }
  if (sink.num_errors() + report.errors > 0) {
    result.outcome = FuzzOutcome::kLintRejected;
    result.detail = lint::render_text(report.findings);
    return result;
  }
  result.outcome = FuzzOutcome::kSolved;
  return result;
}

std::string mutate_netlist(const std::string& text, std::uint64_t seed) {
  SplitMix rng{seed * 0x2545f4914f6cdd1dull + 0x9e3779b9ull};
  std::string out = text;
  const std::size_t rounds = 1 + rng.below(4);
  for (std::size_t round = 0; round < rounds; ++round) {
    if (out.empty()) break;
    switch (rng.below(6)) {
      case 0: {  // flip one byte to a printable character
        out[rng.below(out.size())] =
            static_cast<char>(' ' + rng.below(95));
        break;
      }
      case 1: {  // delete a random span
        const std::size_t at = rng.below(out.size());
        out.erase(at, 1 + rng.below(8));
        break;
      }
      case 2: {  // duplicate a random line
        std::vector<std::string> lines = split_lines(out);
        if (lines.empty()) break;
        const std::size_t at = rng.below(lines.size());
        lines.insert(lines.begin() + at, lines[at]);
        out = join(lines, "\n");
        break;
      }
      case 3: {  // delete a random line
        std::vector<std::string> lines = split_lines(out);
        if (lines.size() < 2) break;
        lines.erase(lines.begin() + rng.below(lines.size()));
        out = join(lines, "\n");
        break;
      }
      case 4: {  // swap two whitespace-separated tokens on one line
        std::vector<std::string> lines = split_lines(out);
        if (lines.empty()) break;
        std::string& line = lines[rng.below(lines.size())];
        std::vector<std::string> toks = split(line, " \t");
        if (toks.size() >= 2) {
          const std::size_t a = rng.below(toks.size());
          const std::size_t b = rng.below(toks.size());
          std::swap(toks[a], toks[b]);
          line = join(toks, " ");
        }
        out = join(lines, "\n");
        break;
      }
      case 5: {  // truncate
        out.resize(rng.below(out.size()));
        break;
      }
    }
  }
  return out;
}

const char* fuzz_outcome_name(FuzzOutcome outcome) {
  switch (outcome) {
    case FuzzOutcome::kParseRejected: return "parse-rejected";
    case FuzzOutcome::kLintRejected: return "lint-rejected";
    case FuzzOutcome::kNoConverge: return "no-converge";
    case FuzzOutcome::kSolved: return "solved";
  }
  return "?";
}

}  // namespace mivtx::verify
