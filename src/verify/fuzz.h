// Defensive-robustness harness: feed arbitrary netlist text through the
// full front half of the engine (parse -> lint -> dcop -> capped transient)
// and demand one of exactly two outcomes:
//   - a structured diagnosis (mivtx::Error, or lint errors, or a
//     non-converged result carried in a result struct), or
//   - a successful solve.
// Crashes, non-mivtx exceptions, and sanitizer reports are the bugs this
// hunts.  The corpus lives in tests/fuzz/; mutate_netlist derives
// deterministic variants so every CI run explores the same neighborhood.
#pragma once

#include <cstdint>
#include <string>

namespace mivtx::verify {

enum class FuzzOutcome {
  kParseRejected,   // parser threw mivtx::Error
  kLintRejected,    // lint produced at least one error diagnostic
  kNoConverge,      // solver ran and reported non-convergence
  kSolved,          // dcop (and capped transient, when possible) succeeded
};

struct FuzzResult {
  FuzzOutcome outcome = FuzzOutcome::kSolved;
  std::string detail;  // diagnosis text for the rejected/no-converge cases
};

// Runs the pipeline; throws only on a contract violation (a non-mivtx
// exception escaping any stage), which a fuzz test reports as failure.
// Transients are capped (few steps, tiny t_stop) so adversarial decks
// cannot stall the suite.
FuzzResult exercise_netlist(const std::string& text);

// Deterministic text mutator: byte flips, token swaps, truncation, line
// duplication and deletion, driven by `seed`.  Same (text, seed) -> same
// mutant, so failures replay.
std::string mutate_netlist(const std::string& text, std::uint64_t seed);

const char* fuzz_outcome_name(FuzzOutcome outcome);

}  // namespace mivtx::verify
