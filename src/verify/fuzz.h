// Defensive-robustness harness: feed arbitrary netlist text through the
// full front half of the engine (parse -> lint -> dcop -> capped transient)
// and demand one of exactly two outcomes:
//   - a structured diagnosis (mivtx::Error, or lint errors, or a
//     non-converged result carried in a result struct), or
//   - a successful solve.
// Crashes, non-mivtx exceptions, and sanitizer reports are the bugs this
// hunts.  The corpus lives in tests/fuzz/; mutate_netlist derives
// deterministic variants so every CI run explores the same neighborhood.
#pragma once

#include <cstdint>
#include <string>

namespace mivtx::verify {

enum class FuzzOutcome {
  kParseRejected,   // parser threw mivtx::Error
  kLintRejected,    // lint produced at least one error diagnostic
  kNoConverge,      // solver ran and reported non-convergence
  kSolved,          // dcop (and capped transient, when possible) succeeded
};

struct FuzzResult {
  FuzzOutcome outcome = FuzzOutcome::kSolved;
  std::string detail;  // diagnosis text for the rejected/no-converge cases
};

// Runs the pipeline; throws only on a contract violation (a non-mivtx
// exception escaping any stage), which a fuzz test reports as failure.
// Transients are capped (few steps, tiny t_stop) so adversarial decks
// cannot stall the suite.
FuzzResult exercise_netlist(const std::string& text);

// .mlib NLDM library text: parse must either throw a structured
// mivtx::Error (kParseRejected) or yield a library whose every table
// interpolates to finite numbers across and beyond the hull and whose
// text render round-trips byte-stably (kSolved).  An accepted library
// that fails those invariants comes back as kNoConverge — a parser bug,
// not a diagnosis, so fuzz tests treat it as failure too.
FuzzResult exercise_library(const std::string& text);

// .gnl design text mapped onto .mlib library text through the
// library-backed analyzer.  Malformed input and library holes (missing
// cells / missing arcs) must surface as structured diagnostics
// (kParseRejected / kLintRejected), a clean run as kSolved; the analyzer
// throwing is kNoConverge.  Never a crash.
FuzzResult exercise_design(const std::string& design_text,
                           const std::string& library_text);

// Deterministic text mutator: byte flips, token swaps, truncation, line
// duplication and deletion, driven by `seed`.  Same (text, seed) -> same
// mutant, so failures replay.
std::string mutate_netlist(const std::string& text, std::uint64_t seed);

const char* fuzz_outcome_name(FuzzOutcome outcome);

}  // namespace mivtx::verify
