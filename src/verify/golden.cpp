#include "verify/golden.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "analyze/blockppa.h"
#include "bsimsoi/model.h"
#include "charlib/characterize.h"
#include "common/error.h"
#include "common/log.h"
#include "common/strings.h"
#include "core/reference_cards.h"
#include "runtime/thread_pool.h"
#include "verify/json.h"

namespace mivtx::verify {
namespace {

// Cross-toolchain slack tiers.  Pure parameters are compared essentially
// exactly; closed-form device evaluations allow libm drift; anything that
// went through the staged extraction optimizer or an adaptive transient
// gets percent-level slack (still far below the regressions these files
// exist to catch — see TESTING.md "tolerance policy").
constexpr double kRtolExact = 1e-12;
constexpr double kRtolClosedForm = 1e-6;
constexpr double kRtolSimulated = 5e-2;
constexpr double kRtolPpa = 5e-3;

void add(GoldenSuiteResult& r, const std::string& name, double value,
         double rtol) {
  r.metrics.push_back({name, value, rtol});
}

std::string impl_tag(cells::Implementation impl) {
  switch (impl) {
    case cells::Implementation::k2D: return "2d";
    case cells::Implementation::kMiv1Channel: return "1ch";
    case cells::Implementation::kMiv2Channel: return "2ch";
    case cells::Implementation::kMiv4Channel: return "4ch";
  }
  return "?";
}

GoldenSuiteResult compute_table1(GoldenContext&) {
  GoldenSuiteResult r{"table1", {}};
  const core::ProcessParams p;
  add(r, "process.t_si_m", p.t_si, kRtolExact);
  add(r, "process.h_src_m", p.h_src, kRtolExact);
  add(r, "process.t_ox_m", p.t_ox, kRtolExact);
  add(r, "process.n_src_m3", p.n_src, kRtolExact);
  add(r, "process.t_spacer_m", p.t_spacer, kRtolExact);
  add(r, "process.t_box_m", p.t_box, kRtolExact);
  add(r, "design.t_miv_m", p.t_miv, kRtolExact);
  add(r, "design.l_src_m", p.l_src, kRtolExact);
  add(r, "design.w_src_m", p.w_src, kRtolExact);
  add(r, "design.l_gate_m", p.l_gate, kRtolExact);
  add(r, "design.vdd_v", p.vdd, kRtolExact);
  // Nominal device metrics from the cached extracted cards (the numbers
  // printed next to Table I by bench_table1_process).
  for (const core::Polarity pol :
       {core::Polarity::kNmos, core::Polarity::kPmos}) {
    for (const core::Variant v : core::all_variants()) {
      const auto& card = core::reference_model_library().card(v, pol);
      const double s = pol == core::Polarity::kNmos ? 1.0 : -1.0;
      const std::string key = core::device_key(v, pol);
      add(r, "device." + key + ".vth_v", std::fabs(card.vth0), kRtolClosedForm);
      add(r, "device." + key + ".ion_a",
          std::fabs(bsimsoi::eval(card, s * p.vdd, s * p.vdd, 0.0).ids),
          kRtolClosedForm);
      add(r, "device." + key + ".ioff_a",
          std::fabs(bsimsoi::eval(card, 0.0, s * p.vdd, 0.0).ids),
          kRtolClosedForm);
    }
  }
  return r;
}

GoldenSuiteResult compute_table2(GoldenContext&) {
  GoldenSuiteResult r{"table2", {}};
  const core::ProcessParams p;
  const bsimsoi::SoiModelCard card = core::initial_card(
      p, core::Variant::kTraditional, core::Polarity::kNmos);
  add(r, "card.level", card.level, kRtolExact);
  add(r, "card.mobmod", card.mobmod, kRtolExact);
  add(r, "card.capmod", card.capmod, kRtolExact);
  add(r, "card.igcmod", card.igcmod, kRtolExact);
  add(r, "card.soimod", card.soimod, kRtolExact);
  add(r, "card.tsi_m", card.tsi, kRtolExact);
  add(r, "card.tox_m", card.tox, kRtolExact);
  add(r, "card.tbox_m", card.tbox, kRtolExact);
  add(r, "card.l_m", card.l, kRtolExact);
  add(r, "card.w_m", card.w, kRtolExact);
  add(r, "card.tnom_c", card.tnom, kRtolExact);
  return r;
}

GoldenSuiteResult compute_table3(GoldenContext& ctx) {
  GoldenSuiteResult r{"table3", {}};
  bool all_under_10 = true;
  for (const core::DeviceExtraction& d : ctx.flow().devices) {
    const std::string key = core::device_key(d.variant, d.polarity);
    add(r, "error." + key + ".idvg", d.report.errors.idvg, kRtolSimulated);
    add(r, "error." + key + ".idvd", d.report.errors.idvd, kRtolSimulated);
    add(r, "error." + key + ".cv", d.report.errors.cv, kRtolSimulated);
    all_under_10 &= d.report.errors.idvg < 0.10 && d.report.errors.idvd < 0.10 &&
                    d.report.errors.cv < 0.10;
  }
  // The paper's headline claim as a hard boolean: any tolerance regression
  // that crosses 10% flips this and fails regardless of rtol slack.
  add(r, "claim.all_regions_under_10pct", all_under_10 ? 1.0 : 0.0, kRtolExact);
  return r;
}

GoldenSuiteResult compute_fig4(GoldenContext& ctx) {
  GoldenSuiteResult r{"fig4", {}};
  // Fig. 4 plots the 4-channel NMOS fit; its staged trace doubles as the
  // Fig. 3 methodology record.
  for (const core::DeviceExtraction& d : ctx.flow().devices) {
    if (d.variant != core::Variant::kMiv4Channel ||
        d.polarity != core::Polarity::kNmos)
      continue;
    add(r, "nmos_4ch.error.idvg", d.report.errors.idvg, kRtolSimulated);
    add(r, "nmos_4ch.error.idvd", d.report.errors.idvd, kRtolSimulated);
    add(r, "nmos_4ch.error.cv", d.report.errors.cv, kRtolSimulated);
    add(r, "nmos_4ch.stages", static_cast<double>(d.report.stages.size()),
        kRtolExact);
    for (std::size_t s = 0; s < d.report.stages.size(); ++s) {
      add(r, format("nmos_4ch.stage%zu.error_after", s + 1),
          d.report.stages[s].error_after, kRtolSimulated);
    }
  }
  MIVTX_EXPECT(!r.metrics.empty(), "golden fig4: nmos_4ch missing from flow");
  return r;
}

GoldenSuiteResult compute_fig5(GoldenContext& ctx) {
  GoldenSuiteResult r{"fig5", {}};
  const std::vector<core::CellPpa>& all = ctx.ppa();
  for (const core::ImplementationSummary& s : core::summarize(all)) {
    const std::string tag = impl_tag(s.impl);
    add(r, "mean." + tag + ".delay_s", s.mean_delay, kRtolPpa);
    add(r, "mean." + tag + ".power_w", s.mean_power, kRtolPpa);
    add(r, "mean." + tag + ".area_m2", s.mean_area, kRtolClosedForm);
    add(r, "mean." + tag + ".pdp_j", s.mean_pdp, kRtolPpa);
  }
  for (const core::CellPpa& c : all) {
    add(r,
        format("delay.%s.%s_s", impl_tag(c.impl).c_str(),
               cells::cell_name(c.type)),
        c.delay, kRtolPpa);
  }
  return r;
}

GoldenSuiteResult compute_blockppa(GoldenContext& ctx) {
  GoldenSuiteResult r{"blockppa", {}};
  for (const analyze::BlockPpaReport& report : ctx.blockppa()) {
    add(r, report.design + ".gates", static_cast<double>(report.num_gates),
        kRtolExact);
    for (const analyze::BlockImplPpa& row : report.rows) {
      const std::string key = report.design + "." + impl_tag(row.impl);
      add(r, key + ".delay_s", row.delay, kRtolPpa);
      add(r, key + ".power_w", row.power, kRtolPpa);
      add(r, key + ".area_m2", row.area, kRtolClosedForm);
      add(r, key + ".utilization", row.utilization, kRtolClosedForm);
      // Library holes must stay at zero: a hole means the STA fell back to
      // a zero-delay passthrough and the delay number above is fiction.
      add(r, key + ".missing_arcs", static_cast<double>(row.missing_arcs),
          kRtolExact);
    }
  }
  return r;
}

}  // namespace

const core::FlowResult& GoldenContext::flow() {
  if (!flow_.has_value()) {
    const LogLevel prev = log_level();
    set_log_level(LogLevel::kError);
    core::FlowOptions fopts;
    fopts.jobs = opts_.jobs;
    fopts.cache = opts_.cache;
    flow_ = core::run_full_flow(core::ProcessParams{}, {}, {}, fopts);
    set_log_level(prev);
  }
  return *flow_;
}

const std::vector<core::CellPpa>& GoldenContext::ppa() {
  if (!ppa_.has_value()) {
    const LogLevel prev = log_level();
    set_log_level(LogLevel::kError);
    runtime::ThreadPool pool(opts_.jobs);
    const core::PpaEngine engine(
        core::reference_model_library(), {}, {},
        {pool.size() > 1 ? &pool : nullptr, opts_.cache});
    ppa_ = engine.measure_all();
    set_log_level(prev);
  }
  return *ppa_;
}

const std::vector<analyze::BlockPpaReport>& GoldenContext::blockppa() {
  if (!blockppa_.has_value()) {
    const LogLevel prev = log_level();
    set_log_level(LogLevel::kError);
    runtime::ThreadPool pool(opts_.jobs);
    const runtime::ExecPolicy exec{pool.size() > 1 ? &pool : nullptr,
                                   opts_.cache};
    // Reference cards (like fig5's PPA survey) so the baseline tracks the
    // block flow itself, not extraction-optimizer drift; the mini 2x2 grid
    // keeps the suite at ~150 transients.
    charlib::CharOptions copts;
    copts.grid = charlib::mini_char_grid();
    const charlib::Characterizer characterizer(
        core::reference_model_library(), copts, {}, exec);
    const std::vector<gatelevel::GateNetlist> designs = {
        gatelevel::ripple_carry_adder(16), gatelevel::alu_block(4)};
    std::vector<std::pair<cells::CellType, cells::Implementation>> jobs;
    for (const gatelevel::GateNetlist& d : designs)
      for (const auto& job : analyze::library_jobs(d, {}))
        if (std::find(jobs.begin(), jobs.end(), job) == jobs.end())
          jobs.push_back(job);
    const charlib::CharLibrary library = characterizer.characterize(jobs);
    std::vector<analyze::BlockPpaReport> reports;
    for (const gatelevel::GateNetlist& d : designs)
      reports.push_back(analyze::run_block_ppa(d, library, {}));
    blockppa_ = std::move(reports);
    set_log_level(prev);
  }
  return *blockppa_;
}

const std::vector<std::string>& golden_suite_names() {
  static const std::vector<std::string> names = {
      "table1", "table2", "table3", "fig4", "fig5", "blockppa"};
  return names;
}

bool golden_suite_is_expensive(const std::string& suite) {
  return suite == "table3" || suite == "fig4" || suite == "fig5" ||
         suite == "blockppa";
}

GoldenSuiteResult compute_golden_suite(const std::string& suite,
                                       GoldenContext& ctx) {
  if (suite == "table1") return compute_table1(ctx);
  if (suite == "table2") return compute_table2(ctx);
  if (suite == "table3") return compute_table3(ctx);
  if (suite == "fig4") return compute_fig4(ctx);
  if (suite == "fig5") return compute_fig5(ctx);
  if (suite == "blockppa") return compute_blockppa(ctx);
  throw Error(format("golden: unknown suite '%s'", suite.c_str()));
}

std::string render_baseline(const GoldenSuiteResult& result,
                            const std::string& git_sha, std::size_t jobs) {
  Json doc = Json::object();
  doc.set("suite", Json::string(result.suite));
  Json prov = Json::object();
  prov.set("git_sha", Json::string(git_sha.empty() ? "unknown" : git_sha));
  prov.set("generator", Json::string("mivtx_verify --refresh-goldens"));
  prov.set("jobs", Json::number(static_cast<double>(jobs)));
  doc.set("provenance", std::move(prov));
  Json metrics = Json::object();
  for (const GoldenMetric& m : result.metrics) {
    Json entry = Json::object();
    entry.set("value", Json::number(m.value));
    entry.set("rtol", Json::number(m.rtol));
    metrics.set(m.name, std::move(entry));
  }
  doc.set("metrics", std::move(metrics));
  return doc.dump(2) + "\n";
}

GoldenCheck check_against_baseline(const GoldenSuiteResult& measured,
                                   const std::string& baseline_json) {
  GoldenCheck check;
  check.suite = measured.suite;
  Json doc;
  try {
    doc = Json::parse(baseline_json);
  } catch (const Error& e) {
    check.error = e.what();
    return check;
  }
  const Json* suite = doc.find("suite");
  if (suite == nullptr || suite->as_string() != measured.suite) {
    check.error = format("baseline is for suite '%s', expected '%s'",
                         suite != nullptr ? suite->as_string().c_str() : "?",
                         measured.suite.c_str());
    return check;
  }
  const Json* metrics = doc.find("metrics");
  if (metrics == nullptr || !metrics->is_object()) {
    check.error = "baseline has no metrics object";
    return check;
  }

  std::map<std::string, double> run;
  for (const GoldenMetric& m : measured.metrics) run[m.name] = m.value;

  for (const auto& [name, entry] : metrics->members()) {
    MetricCheck mc;
    mc.name = name;
    const Json* value = entry.find("value");
    const Json* rtol = entry.find("rtol");
    if (value == nullptr || !value->is_number()) {
      check.error = format("metric %s has no numeric value", name.c_str());
      return check;
    }
    mc.baseline = value->as_number();
    mc.rtol = rtol != nullptr && rtol->is_number() ? rtol->as_number() : 1e-6;
    const auto it = run.find(name);
    if (it == run.end()) {
      mc.status = MetricStatus::kMissingFromRun;
      check.drifted += 1;
    } else {
      mc.measured = it->second;
      const double denom = std::max(std::fabs(mc.baseline), 1e-30);
      mc.rel_err = std::fabs(mc.measured - mc.baseline) / denom;
      if (mc.rel_err > mc.rtol) {
        mc.status = MetricStatus::kDrifted;
        check.drifted += 1;
      }
      run.erase(it);
    }
    check.checks.push_back(std::move(mc));
  }
  // Metrics the run produced but the baseline never recorded: the schema
  // moved without a refresh.
  for (const auto& [name, value] : run) {
    MetricCheck mc;
    mc.name = name;
    mc.measured = value;
    mc.status = MetricStatus::kNotInBaseline;
    check.drifted += 1;
    check.checks.push_back(std::move(mc));
  }
  check.pass = check.drifted == 0 && check.error.empty();
  return check;
}

std::string GoldenCheck::summary() const {
  if (!error.empty()) return format("%s: ERROR %s", suite.c_str(), error.c_str());
  if (pass)
    return format("%s: %zu metrics within tolerance", suite.c_str(),
                  checks.size());
  std::string out =
      format("%s: %zu of %zu metrics drifted", suite.c_str(), drifted,
             checks.size());
  for (const MetricCheck& mc : checks) {
    if (mc.status == MetricStatus::kOk) continue;
    switch (mc.status) {
      case MetricStatus::kDrifted:
        out += format("\n  %s: baseline %s, measured %s (rel err %.3e > rtol "
                      "%.1e)",
                      mc.name.c_str(), format_double(mc.baseline).c_str(),
                      format_double(mc.measured).c_str(), mc.rel_err, mc.rtol);
        break;
      case MetricStatus::kMissingFromRun:
        out += format("\n  %s: in baseline but not produced by this run",
                      mc.name.c_str());
        break;
      case MetricStatus::kNotInBaseline:
        out += format("\n  %s: produced by this run but not in baseline "
                      "(refresh goldens?)",
                      mc.name.c_str());
        break;
      case MetricStatus::kOk:
        break;
    }
  }
  return out;
}

}  // namespace mivtx::verify
