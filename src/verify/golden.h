// Golden engine: canonical numeric baselines for the paper reproductions
// (Table I/II/III, Fig. 4/5) with per-metric relative tolerances.
//
// A baseline is a checked-in JSON document (tests/golden/<suite>.json):
//   {
//     "suite": "fig5",
//     "provenance": {"git_sha": "...", "generator": "...", "jobs": N},
//     "metrics": {"delay.2d.NAND2X1_ps": {"value": 12.3, "rtol": 0.005}, ...}
//   }
// check_against_baseline re-measures the suite and fails on any metric
// whose relative error exceeds its baseline-declared rtol, on metrics that
// vanished from the run, and on metrics the run produces that the baseline
// never recorded (drift both ways is drift).  render_baseline writes a new
// document with provenance, for the --refresh-goldens flow.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "analyze/blockppa.h"
#include "core/flow.h"
#include "core/ppa.h"
#include "runtime/artifact_cache.h"

namespace mivtx::verify {

struct GoldenOptions {
  std::size_t jobs = 1;                     // flow / PPA fan-out
  runtime::ArtifactCache* cache = nullptr;  // reuse for the TCAD flow
};

// Shared lazily-computed inputs: table3 and fig4 read the same full-flow
// result; fig5 reads one PPA survey; blockppa reads one block-PPA sweep
// over the two benchmark designs.  Build one context per CLI run so the
// expensive stages execute at most once.
class GoldenContext {
 public:
  explicit GoldenContext(GoldenOptions opts = {}) : opts_(opts) {}

  const GoldenOptions& options() const { return opts_; }
  const core::FlowResult& flow();                 // TCAD + extraction, all 8
  const std::vector<core::CellPpa>& ppa();        // 14 cells x 4 impls
  // rca16 + alu4 block PPA (all 4 impls, mini charlib grid, reference
  // cards — see compute_blockppa for the determinism rationale).
  const std::vector<analyze::BlockPpaReport>& blockppa();

 private:
  GoldenOptions opts_;
  std::optional<core::FlowResult> flow_;
  std::optional<std::vector<core::CellPpa>> ppa_;
  std::optional<std::vector<analyze::BlockPpaReport>> blockppa_;
};

// One measured metric with the tolerance a refresh would record for it.
struct GoldenMetric {
  std::string name;
  double value = 0.0;
  double rtol = 1e-6;
};

struct GoldenSuiteResult {
  std::string suite;
  std::vector<GoldenMetric> metrics;  // stable order = file order
};

// All known suites, in canonical order: table1 table2 table3 fig4 fig5
// blockppa.
const std::vector<std::string>& golden_suite_names();
// True for the suites that need the multi-second TCAD/PPA stages.
bool golden_suite_is_expensive(const std::string& suite);

// Throws mivtx::Error for an unknown suite name.
GoldenSuiteResult compute_golden_suite(const std::string& suite,
                                       GoldenContext& ctx);

// Serialize with provenance; byte-stable for identical inputs (numbers go
// through format_double, no timestamps).
std::string render_baseline(const GoldenSuiteResult& result,
                            const std::string& git_sha, std::size_t jobs);

enum class MetricStatus { kOk, kDrifted, kMissingFromRun, kNotInBaseline };

struct MetricCheck {
  std::string name;
  MetricStatus status = MetricStatus::kOk;
  double baseline = 0.0;
  double measured = 0.0;
  double rtol = 0.0;
  double rel_err = 0.0;
};

struct GoldenCheck {
  std::string suite;
  bool pass = false;
  std::string error;  // baseline unreadable / malformed
  std::size_t drifted = 0;
  std::vector<MetricCheck> checks;
  std::string summary() const;
};

GoldenCheck check_against_baseline(const GoldenSuiteResult& measured,
                                   const std::string& baseline_json);

}  // namespace mivtx::verify
