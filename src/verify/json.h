// The JSON document model moved to common/json.h when mivtx::serve started
// sharing it for its wire protocol.  This forwarder keeps verify's includes
// and the verify::Json spelling working.
#pragma once

#include "common/json.h"

namespace mivtx::verify {
using mivtx::Json;
}  // namespace mivtx::verify
