#include "verify/properties.h"

#include <algorithm>
#include <cmath>
#include <optional>

#include "cells/netgen.h"
#include "charlib/library.h"
#include "common/error.h"
#include "common/rng.h"
#include "common/strings.h"
#include "core/ppa.h"
#include "core/reference_cards.h"
#include "spice/ac.h"
#include "spice/transient.h"
#include "verify/compare.h"
#include "verify/differential.h"
#include "waveform/measure.h"

namespace mivtx::verify {
namespace {

using spice::Circuit;
using spice::NodeId;
using spice::SourceSpec;
using waveform::Waveform;

// Accumulates one property's verdict; fail() keeps only the first detail
// so the report points at a single replayable instance.
struct PropertyCheck {
  PropertyResult result;

  explicit PropertyCheck(std::string name, double bound) {
    result.name = std::move(name);
    result.bound = bound;
  }
  void observe(double err) { result.worst = std::max(result.worst, err); }
  void expect(bool ok, const std::string& detail) {
    if (!ok && result.pass) {
      result.pass = false;
      result.detail = detail;
    }
  }
  // err must stay within the declared bound.
  void expect_within(double err, const std::string& what) {
    observe(err);
    expect(err <= result.bound,
           format("%s: error %.3e exceeds bound %.3e", what.c_str(), err,
                  result.bound));
  }
  void done(std::size_t cases) { result.cases = cases; }
};

spice::NewtonOptions tight_newton() {
  spice::NewtonOptions o;
  o.vtol = 1e-12;
  o.reltol = 1e-9;
  o.itol = 1e-15;
  o.residual_tol = 1e-9;
  o.bypass_vtol = 0.0;
  return o;
}

// --------------------------------------------------------------- circuits

// Random linear resistive network: a resistor spanning tree guarantees a DC
// path to ground from every node, extra chords add mesh structure, then one
// voltage source and two current sources provide independent stimulus
// groups for the superposition / scaling checks.
struct LinearNetwork {
  Circuit circuit;
  double v_value = 0.0;
  double i1_value = 0.0;
  double i2_value = 0.0;
};

LinearNetwork random_linear_network(Rng& rng) {
  LinearNetwork net;
  Circuit& ckt = net.circuit;
  const std::size_t n = 3 + rng.uniform_index(6);  // 3..8 signal nodes
  std::vector<NodeId> nodes{spice::kGround};
  for (std::size_t i = 1; i <= n; ++i)
    nodes.push_back(ckt.node(format("n%zu", i)));
  std::size_t r = 0;
  for (std::size_t i = 1; i <= n; ++i) {
    const NodeId parent = nodes[rng.uniform_index(i)];  // tree: earlier node
    ckt.add_resistor(format("R%zu", r++), nodes[i], parent,
                     rng.uniform(100.0, 10e3));
  }
  const std::size_t chords = rng.uniform_index(n);
  for (std::size_t c = 0; c < chords; ++c) {
    const NodeId a = nodes[rng.uniform_index(n + 1)];
    const NodeId b = nodes[rng.uniform_index(n + 1)];
    if (a == b) continue;
    ckt.add_resistor(format("R%zu", r++), a, b, rng.uniform(100.0, 10e3));
  }
  net.v_value = rng.uniform(-2.0, 2.0);
  net.i1_value = rng.uniform(-1e-3, 1e-3);
  net.i2_value = rng.uniform(-1e-3, 1e-3);
  ckt.add_vsource("V1", nodes[1 + rng.uniform_index(n)], spice::kGround,
                  SourceSpec::DC(net.v_value));
  auto distinct_pair = [&](NodeId& a, NodeId& b) {
    a = nodes[rng.uniform_index(n + 1)];
    do {
      b = nodes[1 + rng.uniform_index(n)];
    } while (b == a);
  };
  NodeId p = spice::kGround, m = spice::kGround;
  distinct_pair(p, m);
  ckt.add_isource("I1", p, m, SourceSpec::DC(net.i1_value));
  distinct_pair(p, m);
  ckt.add_isource("I2", p, m, SourceSpec::DC(net.i2_value));
  return net;
}

linalg::Vector solve_dcop(const Circuit& ckt, PropertyCheck& check,
                          const char* what) {
  const spice::DcResult r = spice::dc_operating_point(ckt, tight_newton());
  check.expect(r.converged, format("%s: dcop did not converge", what));
  return r.x;
}

double max_abs_diff(const linalg::Vector& a, const linalg::Vector& b) {
  double d = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i)
    d = std::max(d, std::fabs(a[i] - b[i]));
  return d;
}

// ----------------------------------------------------- dcop superposition

PropertyResult check_dcop_superposition(const PropertyOptions& opts) {
  PropertyCheck check("dcop-superposition", 1e-8);
  Rng rng(opts.seed ^ 0x50e12u);
  for (std::size_t k = 0; k < opts.cases; ++k) {
    LinearNetwork net = random_linear_network(rng);
    const linalg::Vector full = solve_dcop(net.circuit, check, "full");

    Circuit v_only = net.circuit;
    v_only.element("I1").source = SourceSpec::DC(0.0);
    v_only.element("I2").source = SourceSpec::DC(0.0);
    const linalg::Vector xv = solve_dcop(v_only, check, "v-only");

    Circuit i_only = net.circuit;
    i_only.element("V1").source = SourceSpec::DC(0.0);
    const linalg::Vector xi = solve_dcop(i_only, check, "i-only");

    linalg::Vector sum = xv;
    for (std::size_t i = 0; i < sum.size(); ++i) sum[i] += xi[i];
    check.expect_within(max_abs_diff(full, sum), format("case %zu", k));
  }
  check.done(opts.cases);
  return check.result;
}

PropertyResult check_dcop_scaling(const PropertyOptions& opts) {
  PropertyCheck check("dcop-scaling", 1e-8);
  Rng rng(opts.seed ^ 0xa11ce5u);
  for (std::size_t k = 0; k < opts.cases; ++k) {
    LinearNetwork net = random_linear_network(rng);
    const double alpha = rng.uniform(0.25, 4.0);
    const linalg::Vector base = solve_dcop(net.circuit, check, "base");

    Circuit scaled = net.circuit;
    scaled.element("V1").source = SourceSpec::DC(alpha * net.v_value);
    scaled.element("I1").source = SourceSpec::DC(alpha * net.i1_value);
    scaled.element("I2").source = SourceSpec::DC(alpha * net.i2_value);
    const linalg::Vector xs = solve_dcop(scaled, check, "scaled");

    linalg::Vector expected = base;
    for (std::size_t i = 0; i < expected.size(); ++i) expected[i] *= alpha;
    check.expect_within(max_abs_diff(xs, expected), format("case %zu", k));
  }
  check.done(opts.cases);
  return check.result;
}

// ------------------------------------------------------- linear transients

// RC ladder driven by a pulse: the workhorse linear transient testbed.
Circuit rc_ladder(std::size_t stages, double r_ohm, double c_farad,
                  const SourceSpec& stimulus) {
  Circuit ckt;
  NodeId prev = ckt.node("in");
  ckt.add_vsource("V1", prev, spice::kGround, stimulus);
  for (std::size_t s = 0; s < stages; ++s) {
    const NodeId next = ckt.node(format("s%zu", s + 1));
    ckt.add_resistor(format("R%zu", s + 1), prev, next, r_ohm);
    ckt.add_capacitor(format("C%zu", s + 1), next, spice::kGround, c_farad);
    prev = next;
  }
  return ckt;
}

spice::TransientOptions tight_transient(double t_stop) {
  spice::TransientOptions topt;
  topt.t_stop = t_stop;
  topt.reltol = 1e-6;
  topt.abstol_v = 1e-9;
  topt.newton = tight_newton();
  return topt;
}

spice::PulseSpec test_pulse(double delay) {
  spice::PulseSpec p;
  p.v1 = 0.0;
  p.v2 = 1.0;
  p.delay = delay;
  p.rise = 50e-12;
  p.fall = 50e-12;
  p.width = 400e-12;
  return p;
}

PropertyResult check_tran_scaling(const PropertyOptions& opts) {
  // Both runs approximate the exact solution to the local-error budget, so
  // the residual mismatch is bounded by the step control, not FP noise.
  PropertyCheck check("tran-scaling", 2e-5);
  Rng rng(opts.seed ^ 0x7ca1eu);
  const std::size_t cases = std::max<std::size_t>(3, opts.cases / 3);
  for (std::size_t k = 0; k < cases; ++k) {
    const double alpha = rng.uniform(0.5, 3.0);
    const std::size_t stages = 1 + rng.uniform_index(3);
    spice::PulseSpec p = test_pulse(30e-12);
    Circuit base = rc_ladder(stages, 1e3, 100e-15, SourceSpec::Pulse(p));
    spice::PulseSpec ps = p;
    ps.v1 *= alpha;
    ps.v2 *= alpha;
    Circuit scaled = rc_ladder(stages, 1e3, 100e-15, SourceSpec::Pulse(ps));

    const double t_stop = 600e-12;
    const spice::TransientResult a = transient(base, tight_transient(t_stop));
    const spice::TransientResult b = transient(scaled, tight_transient(t_stop));
    check.expect(a.ok && b.ok, format("case %zu: transient failed", k));
    if (!a.ok || !b.ok) continue;
    const Waveform& wa = a.v(format("s%zu", stages));
    const Waveform& wb = b.v(format("s%zu", stages));
    double err = 0.0;
    for (std::size_t i = 0; i < wa.size(); ++i)
      err = std::max(err, std::fabs(wb.sample(wa.time(i)) -
                                    alpha * wa.value(i)) / alpha);
    check.expect_within(err, format("case %zu (alpha %.2f)", k, alpha));
  }
  check.done(cases);
  return check.result;
}

PropertyResult check_tran_time_shift(const PropertyOptions& opts) {
  PropertyCheck check("tran-time-shift", 2e-5);
  Rng rng(opts.seed ^ 0x51f7edu);
  const std::size_t cases = std::max<std::size_t>(3, opts.cases / 3);
  for (std::size_t k = 0; k < cases; ++k) {
    const double shift = rng.uniform(20e-12, 120e-12);
    const std::size_t stages = 1 + rng.uniform_index(3);
    Circuit base =
        rc_ladder(stages, 1e3, 100e-15, SourceSpec::Pulse(test_pulse(40e-12)));
    Circuit shifted = rc_ladder(stages, 1e3, 100e-15,
                                SourceSpec::Pulse(test_pulse(40e-12 + shift)));

    const double t_stop = 600e-12;
    const spice::TransientResult a = transient(base, tight_transient(t_stop));
    const spice::TransientResult b =
        transient(shifted, tight_transient(t_stop + shift));
    check.expect(a.ok && b.ok, format("case %zu: transient failed", k));
    if (!a.ok || !b.ok) continue;
    const Waveform& wa = a.v(format("s%zu", stages));
    const Waveform& wb = b.v(format("s%zu", stages));
    double err = 0.0;
    for (std::size_t i = 0; i < wa.size(); ++i)
      err = std::max(err,
                     std::fabs(wb.sample(wa.time(i) + shift) - wa.value(i)));
    check.expect_within(err, format("case %zu (shift %s)", k,
                                    eng_format(shift, "s").c_str()));
  }
  check.done(cases);
  return check.result;
}

// ------------------------------------------------------ analytic RC / RL

// Response of a first-order lag (time constant tau) to a ramp 0 -> v_final
// over [t0, t0 + tr], then hold.  Closed form of dy/dt = (u(t) - y)/tau.
double first_order_ramp_response(double t, double t0, double tr, double v_final,
                                 double tau) {
  if (t <= t0) return 0.0;
  const double ramp_end = std::min(t - t0, tr);
  // During the ramp, u(t') = v_final * t'/tr:
  double y = (v_final / tr) * (ramp_end - tau * (1.0 - std::exp(-ramp_end / tau)));
  if (t <= t0 + tr) return y;
  // Hold phase: exponential approach from the ramp-end value.
  return v_final + (y - v_final) * std::exp(-(t - t0 - tr) / tau);
}

PropertyResult check_rc_rl_closed_form(const PropertyOptions&) {
  // Swept step-control settings: the observed error must respect each
  // setting's budget (scaled bound), holding the integrator's accuracy
  // claim to the analytic answer rather than to itself.
  PropertyCheck check("rc-rl-closed-form", 1.0);  // bound applied per-case
  const double reltols[] = {1e-3, 1e-4, 1e-5};
  const double t0 = 50e-12, tr = 100e-12, v_final = 1.0;
  std::size_t cases = 0;
  std::vector<double> rc_errors;
  for (const double reltol : reltols) {
    // RC: V -> R 1k -> node a -> C 200f, tau = 200 ps.
    Circuit rc;
    const NodeId in = rc.node("in"), a = rc.node("a");
    rc.add_vsource("V1", in, spice::kGround,
                   SourceSpec::Pwl({{0.0, 0.0},
                                    {t0, 0.0},
                                    {t0 + tr, v_final},
                                    {2e-9, v_final}}));
    rc.add_resistor("R1", in, a, 1e3);
    rc.add_capacitor("C1", a, spice::kGround, 200e-15);
    const double tau = 1e3 * 200e-15;

    spice::TransientOptions topt;
    topt.t_stop = 1.5e-9;
    topt.reltol = reltol;
    topt.abstol_v = 1e-9;
    topt.newton = tight_newton();
    const spice::TransientResult tr_rc = transient(rc, topt);
    check.expect(tr_rc.ok, format("rc reltol %.0e: transient failed", reltol));
    if (tr_rc.ok) {
      const Waveform& w = tr_rc.v("a");
      double err = 0.0;
      for (std::size_t i = 0; i < w.size(); ++i)
        err = std::max(err, std::fabs(w.value(i) -
                                      first_order_ramp_response(
                                          w.time(i), t0, tr, v_final, tau)));
      check.observe(err);
      rc_errors.push_back(err);
      // Budget: the LTE controller holds per-step error near reltol * swing;
      // global accumulation stays within a small multiple.
      check.expect(err <= 25.0 * reltol * v_final,
                   format("rc reltol %.0e: error %.3e exceeds %.3e", reltol,
                          err, 25.0 * reltol * v_final));
      ++cases;
    }

    // RL: V -> R 500 -> node a -> L 100n to ground.  The node voltage is
    // v_in - i R with i the first-order lag of v_in / R at tau = L / R, so
    // the same closed form applies to the current.
    Circuit rl;
    const NodeId in2 = rl.node("in"), a2 = rl.node("a");
    rl.add_vsource("V1", in2, spice::kGround,
                   SourceSpec::Pwl({{0.0, 0.0},
                                    {t0, 0.0},
                                    {t0 + tr, v_final},
                                    {2e-9, v_final}}));
    rl.add_resistor("R1", in2, a2, 500.0);
    rl.add_inductor("L1", a2, spice::kGround, 100e-9);
    const double tau_rl = 100e-9 / 500.0;
    const spice::TransientResult tr_rl = transient(rl, topt);
    check.expect(tr_rl.ok, format("rl reltol %.0e: transient failed", reltol));
    if (tr_rl.ok) {
      const Waveform& w = tr_rl.v("a");
      double err = 0.0;
      for (std::size_t i = 0; i < w.size(); ++i) {
        // v_a = v_in - R * i, i = (v_final-lag of v_in/R): closed form for
        // v_a is v_in(t) - first_order_ramp_response on the ramp of v_in.
        const double v_in =
            (w.time(i) <= t0)
                ? 0.0
                : (w.time(i) <= t0 + tr ? v_final * (w.time(i) - t0) / tr
                                        : v_final);
        const double expected =
            v_in - first_order_ramp_response(w.time(i), t0, tr, v_final, tau_rl);
        err = std::max(err, std::fabs(w.value(i) - expected));
      }
      check.observe(err);
      check.expect(err <= 25.0 * reltol * v_final,
                   format("rl reltol %.0e: error %.3e exceeds %.3e", reltol,
                          err, 25.0 * reltol * v_final));
      ++cases;
    }
  }
  // Tightening the tolerance by 100x must actually buy accuracy.
  if (rc_errors.size() == 3)
    check.expect(rc_errors[2] < rc_errors[0],
                 format("rc error did not improve: %.3e @1e-3 vs %.3e @1e-5",
                        rc_errors[0], rc_errors[2]));
  check.result.bound = 25.0 * 1e-3;  // loosest budget, for the report
  check.done(cases);
  return check.result;
}

// --------------------------------------------------- dc sweep consistency

PropertyResult check_dc_sweep_vs_dcop(const PropertyOptions&) {
  PropertyCheck check("dc-sweep-vs-dcop", 1e-8);
  // A real nonlinear circuit: the 2D inverter under its paper parasitics.
  DiffCase inv = make_cell_case(cells::CellType::kInv1,
                                cells::Implementation::k2D,
                                core::reference_model_library());
  inv.circuit.element("VA").source = SourceSpec::DC(0.0);

  std::vector<double> values;
  for (double v = 0.0; v <= 1.0 + 1e-12; v += 0.05) values.push_back(v);
  const spice::DcSweepResult sweep =
      spice::dc_sweep(inv.circuit, "VA", values, tight_newton());
  check.expect(sweep.converged, "dc_sweep did not converge");
  if (sweep.converged) {
    for (std::size_t k = 0; k < values.size(); ++k) {
      Circuit point = inv.circuit;
      point.element("VA").source = SourceSpec::DC(values[k]);
      const spice::DcResult r = spice::dc_operating_point(point, tight_newton());
      check.expect(r.converged, format("dcop at VA=%.2f failed", values[k]));
      if (!r.converged) continue;
      check.expect_within(max_abs_diff(sweep.solutions[k], r.x),
                          format("VA = %.2f", values[k]));
    }
  }
  check.done(values.size());
  return check.result;
}

// ------------------------------------------------------- ac vs transient

PropertyResult check_ac_vs_transient(const PropertyOptions&) {
  PropertyCheck check("ac-vs-transient", 5e-3);
  // RC low-pass, fc = 1/(2 pi RC) ~ 1.59 MHz; probe below and above.
  const double r_ohm = 1e3, c_farad = 100e-12;
  const double freqs[] = {0.5e6, 3e6};
  std::size_t cases = 0;
  for (const double f : freqs) {
    const double amp = 0.5;
    Circuit ckt;
    const NodeId in = ckt.node("in"), a = ckt.node("a");
    ckt.add_vsource("V1", in, spice::kGround, SourceSpec::Sin(0.0, amp, f));
    ckt.add_resistor("R1", in, a, r_ohm);
    ckt.add_capacitor("C1", a, spice::kGround, c_farad);

    const spice::AcResult ac = spice::ac_analysis(ckt, "V1", {f}, tight_newton());
    check.expect(ac.ok, format("ac at %.2e Hz failed", f));
    if (!ac.ok) continue;

    const double period = 1.0 / f;
    spice::TransientOptions topt;
    topt.t_stop = 10.0 * period;  // >> tau = 100 ns: homogeneous term dies
    topt.h_max = period / 200.0;
    topt.reltol = 1e-6;
    topt.abstol_v = 1e-9;
    topt.newton = tight_newton();
    const spice::TransientResult tr = transient(ckt, topt);
    check.expect(tr.ok, format("transient at %.2e Hz failed", f));
    if (!tr.ok) continue;

    // Fourier projection of the last two full periods onto sin/cos.
    const Waveform& w = tr.v("a");
    const double t1 = topt.t_stop, t0 = t1 - 2.0 * period;
    const std::size_t samples = 4000;
    double s_sum = 0.0, c_sum = 0.0;
    const double dt = (t1 - t0) / static_cast<double>(samples);
    for (std::size_t i = 0; i < samples; ++i) {
      const double t = t0 + (static_cast<double>(i) + 0.5) * dt;
      const double v = w.sample(t);
      s_sum += v * std::sin(2.0 * M_PI * f * t) * dt;
      c_sum += v * std::cos(2.0 * M_PI * f * t) * dt;
    }
    const double window = t1 - t0;
    const double a_sin = 2.0 * s_sum / window, a_cos = 2.0 * c_sum / window;
    const double measured_mag = std::hypot(a_sin, a_cos) / amp;
    const double measured_ph = std::atan2(a_cos, a_sin);

    const double ac_mag = ac.magnitude("a", 0);
    const double ac_ph = ac.phase("a", 0);
    check.expect_within(std::fabs(measured_mag - ac_mag) / ac_mag,
                        format("magnitude at %.2e Hz", f));
    double dph = measured_ph - ac_ph;
    while (dph > M_PI) dph -= 2.0 * M_PI;
    while (dph < -M_PI) dph += 2.0 * M_PI;
    check.expect_within(std::fabs(dph), format("phase at %.2e Hz", f));
    ++cases;
  }
  check.done(cases);
  return check.result;
}

// ------------------------------------------------- crossings brute oracle

// Independent re-derivation of the documented find_crossings semantics by
// run-length scanning: collapse at-level runs, then judge each transition
// by the strict sides before and after it.  O(n), no interpolation search,
// no shared code with waveform/measure.cpp.
std::vector<waveform::Crossing> oracle_crossings(const Waveform& w,
                                                 double level) {
  std::vector<waveform::Crossing> out;
  const std::size_t n = w.size();
  auto side = [&](std::size_t i) {
    if (w.value(i) > level) return +1;
    if (w.value(i) < level) return -1;
    return 0;
  };
  int last_side = 0;            // strict side of the last non-level sample
  std::size_t last_idx = 0;     // its index
  std::size_t i = 0;
  while (i < n) {
    if (side(i) != 0) {
      if (last_side != 0 && side(i) != last_side && i == last_idx + 1) {
        // Strict straddle: interpolated instant inside the segment.
        const double t0 = w.time(i - 1), t1 = w.time(i);
        const double v0 = w.value(i - 1), v1 = w.value(i);
        const double t = t0 + (level - v0) / (v1 - v0) * (t1 - t0);
        out.push_back({t, side(i) > 0 ? waveform::EdgeKind::kRise
                                      : waveform::EdgeKind::kFall});
      }
      last_side = side(i);
      last_idx = i;
      ++i;
      continue;
    }
    // At-level run [run_start, i).
    const std::size_t run_start = i;
    while (i < n && side(i) == 0) ++i;
    const int before = last_side;
    const int after = i < n ? side(i) : 0;
    const double t = w.time(run_start);
    if (before == 0 && after != 0) {
      // Starts on the level: departure direction at the first sample.
      out.push_back({t, after > 0 ? waveform::EdgeKind::kRise
                                  : waveform::EdgeKind::kFall});
    } else if (before != 0 && after == 0) {
      // Ends on the level: arrival direction at the first at-level sample.
      out.push_back({t, before > 0 ? waveform::EdgeKind::kFall
                                   : waveform::EdgeKind::kRise});
    } else if (before != 0 && after != 0 && before != after) {
      out.push_back({t, after > 0 ? waveform::EdgeKind::kRise
                                  : waveform::EdgeKind::kFall});
    }
    // Touch (before == after) or all-level waveform: no crossing.  The
    // run's samples update nothing: last_side survives across a touch.
    if (i < n) {
      last_side = after;
      last_idx = i;
      // The non-level sample that ended the run is consumed on the next
      // loop turn; straddle logic must not also fire for it.
      ++i;
    }
  }
  return out;
}

Waveform random_level_waveform(Rng& rng, double level) {
  // Values drawn from a ladder around the level so exact hits and plateaus
  // happen constantly; occasional repeats make multi-sample plateaus.
  const double ladder[] = {level - 0.4, level - 0.2, level, level,
                           level + 0.2, level + 0.5};
  const std::size_t n = 2 + rng.uniform_index(30);
  std::vector<double> times, values;
  double t = 0.0;
  double v = ladder[rng.uniform_index(6)];
  for (std::size_t i = 0; i < n; ++i) {
    t += rng.uniform(1e-12, 50e-12);
    if (!rng.bernoulli(0.3)) v = ladder[rng.uniform_index(6)];
    times.push_back(t);
    values.push_back(v);
  }
  return Waveform(std::move(times), std::move(values));
}

PropertyResult check_crossings_oracle(const PropertyOptions& opts) {
  PropertyCheck check("crossings-oracle", 1e-15);
  const std::size_t cases = opts.cases * 25;
  Rng rng(opts.seed ^ 0xc0551u);
  for (std::size_t k = 0; k < cases; ++k) {
    const double level = rng.uniform(-1.0, 1.0);
    const Waveform w = random_level_waveform(rng, level);
    const auto expected = oracle_crossings(w, level);
    const auto got = find_crossings(w, level, waveform::EdgeKind::kAny);
    check.expect(got.size() == expected.size(),
                 format("case %zu: %zu crossings, oracle says %zu", k,
                        got.size(), expected.size()));
    if (got.size() != expected.size()) continue;
    for (std::size_t i = 0; i < got.size(); ++i) {
      check.expect_within(std::fabs(got[i].time - expected[i].time),
                          format("case %zu crossing %zu time", k, i));
      check.expect(got[i].edge == expected[i].edge,
                   format("case %zu crossing %zu edge differs", k, i));
    }
    // Directional filters must be exact sublists.
    for (const waveform::EdgeKind kind :
         {waveform::EdgeKind::kRise, waveform::EdgeKind::kFall}) {
      const auto filtered = find_crossings(w, level, kind);
      std::size_t j = 0;
      for (const auto& c : expected)
        if (c.edge == kind) {
          check.expect(j < filtered.size() &&
                           std::fabs(filtered[j].time - c.time) <= 1e-15,
                       format("case %zu: filtered crossing %zu missing", k, j));
          ++j;
        }
      check.expect(j == filtered.size(),
                   format("case %zu: filter returned extras", k));
    }
    // next_crossing at random probes must agree with the full list.
    for (int probe = 0; probe < 4; ++probe) {
      const double after = rng.uniform(0.0, w.t_end() * 1.1);
      const auto nc = next_crossing(w, level, after, waveform::EdgeKind::kAny);
      const waveform::Crossing* first = nullptr;
      for (const auto& c : expected)
        if (c.time >= after) {
          first = &c;
          break;
        }
      check.expect((nc.has_value()) == (first != nullptr),
                   format("case %zu: next_crossing presence mismatch", k));
      if (nc.has_value() && first != nullptr) {
        check.expect_within(std::fabs(nc->time - first->time),
                            format("case %zu next_crossing time", k));
        check.expect(nc->edge == first->edge,
                     format("case %zu next_crossing edge", k));
      }
    }
  }
  check.done(cases);
  return check.result;
}

// -------------------------------------------------- unknown_name roundtrip

PropertyResult check_unknown_name_roundtrip(const PropertyOptions& opts) {
  PropertyCheck check("unknown-name-roundtrip", 0.0);
  const std::size_t cases = opts.cases * 4;
  Rng rng(opts.seed ^ 0x0a3eu);
  for (std::size_t k = 0; k < cases; ++k) {
    Circuit ckt;
    const std::size_t n = 2 + rng.uniform_index(7);
    std::vector<NodeId> nodes{spice::kGround};
    for (std::size_t i = 1; i <= n; ++i)
      nodes.push_back(ckt.node(format("node_%zu", i)));
    auto pick = [&] { return nodes[rng.uniform_index(nodes.size())]; };
    std::size_t serial = 0;
    const std::size_t elements = 2 + rng.uniform_index(8);
    std::vector<std::string> branch_elements;
    for (std::size_t e = 0; e < elements; ++e) {
      const std::string name = format("X%zu", serial++);
      switch (rng.uniform_index(6)) {
        case 0:
          ckt.add_resistor(name, pick(), pick(), 1e3);
          break;
        case 1:
          ckt.add_capacitor(name, pick(), pick(), 1e-15);
          break;
        case 2:
          ckt.add_inductor(name, pick(), pick(), 1e-9);
          branch_elements.push_back(name);
          break;
        case 3:
          ckt.add_vsource(name, pick(), pick(), SourceSpec::DC(1.0));
          branch_elements.push_back(name);
          break;
        case 4:
          ckt.add_vcvs(name, pick(), pick(), pick(), pick(), 2.0);
          branch_elements.push_back(name);
          break;
        default:
          ckt.add_vccs(name, pick(), pick(), pick(), pick(), 1e-3);
          break;
      }
    }
    // Voltage unknowns map back to node names.
    for (NodeId node = 1; node < ckt.num_nodes(); ++node)
      check.expect(ckt.unknown_name(ckt.node_unknown(node)) ==
                       ckt.node_name(node),
                   format("case %zu: node %zu name mismatch", k, node));
    // Branch unknowns map back to I(<element>).
    for (const std::string& name : branch_elements) {
      const spice::Element& e = ckt.element(name);
      check.expect(ckt.unknown_name(ckt.branch_unknown(e)) == "I(" + name + ")",
                   format("case %zu: branch %s name mismatch", k, name.c_str()));
    }
    // Every unknown index names something, and the names are distinct.
    std::vector<std::string> names;
    for (std::size_t u = 0; u < ckt.system_size(); ++u)
      names.push_back(ckt.unknown_name(u));
    std::sort(names.begin(), names.end());
    check.expect(std::adjacent_find(names.begin(), names.end()) == names.end(),
                 format("case %zu: duplicate unknown names", k));
  }
  check.done(cases);
  return check.result;
}

// ------------------------------------------------- charlib table lookups

// Random strictly-ascending axis of n points.
std::vector<double> random_axis(Rng& rng, std::size_t n) {
  std::vector<double> axis;
  double x = rng.uniform(-5.0, 5.0);
  for (std::size_t i = 0; i < n; ++i) {
    axis.push_back(x);
    x += rng.uniform(0.1, 3.0);
  }
  return axis;
}

PropertyResult check_charlib_bilinear(const PropertyOptions& opts) {
  // Bilinear lookup: exact at grid points, a convex combination of the
  // bounding corners between them (hence monotone over monotone tables),
  // clamped-and-flagged beyond the hull.
  PropertyCheck check("charlib-bilinear", 1e-12);
  const std::size_t cases = opts.cases * 4;
  Rng rng(opts.seed ^ 0xcaab1eu);
  for (std::size_t k = 0; k < cases; ++k) {
    const std::vector<double> slews = random_axis(rng, 2 + rng.uniform_index(4));
    const std::vector<double> loads = random_axis(rng, 2 + rng.uniform_index(4));
    charlib::Table2D table(slews, loads);
    const bool monotone = rng.uniform_index(2) == 0;
    for (std::size_t i = 0; i < slews.size(); ++i)
      for (std::size_t j = 0; j < loads.size(); ++j)
        table.set(i, j, monotone
                            ? 1.0 * i + 0.5 * j + 0.1 * rng.uniform(0.0, 1.0)
                            : rng.uniform(-10.0, 10.0));

    // Exact (and unflagged) at every grid point.
    for (std::size_t i = 0; i < slews.size(); ++i) {
      for (std::size_t j = 0; j < loads.size(); ++j) {
        const charlib::LookupResult r = table.lookup(slews[i], loads[j]);
        check.expect_within(std::fabs(r.value - table.at(i, j)),
                            format("case %zu grid point (%zu,%zu)", k, i, j));
        check.expect(!r.clamped_slew && !r.clamped_load,
                     format("case %zu: clamp flagged on a grid point", k));
      }
    }

    // Interior points stay inside the bounding cell's corner hull; over a
    // monotone table the lookup is monotone along each axis.
    for (std::size_t probe = 0; probe < 8; ++probe) {
      const std::size_t i = rng.uniform_index(slews.size() - 1);
      const std::size_t j = rng.uniform_index(loads.size() - 1);
      const double s = rng.uniform(slews[i], slews[i + 1]);
      const double l = rng.uniform(loads[j], loads[j + 1]);
      const charlib::LookupResult r = table.lookup(s, l);
      const double corners[] = {table.at(i, j), table.at(i + 1, j),
                                table.at(i, j + 1), table.at(i + 1, j + 1)};
      const double lo = *std::min_element(corners, corners + 4);
      const double hi = *std::max_element(corners, corners + 4);
      check.expect(r.value >= lo - 1e-12 && r.value <= hi + 1e-12,
                   format("case %zu: interior value outside corner hull", k));
      check.expect(!r.clamped_slew && !r.clamped_load,
                   format("case %zu: clamp flagged inside the hull", k));
      if (monotone) {
        const charlib::LookupResult up_s = table.lookup(slews[i + 1], l);
        const charlib::LookupResult up_l = table.lookup(s, loads[j + 1]);
        check.expect(r.value <= up_s.value + 1e-12 &&
                         r.value <= up_l.value + 1e-12,
                     format("case %zu: monotone table, non-monotone lookup",
                            k));
      }
    }

    // Beyond the hull: flagged, and equal to the clamped edge value.
    const double mid_l = 0.5 * (loads.front() + loads.back());
    const charlib::LookupResult below = table.lookup(slews.front() - 1.0, mid_l);
    check.expect(below.clamped_slew && !below.clamped_load,
                 format("case %zu: slew underflow not flagged", k));
    check.expect_within(
        std::fabs(below.value - table.lookup(slews.front(), mid_l).value),
        format("case %zu: slew underflow not clamped to the edge", k));
    const charlib::LookupResult beyond =
        table.lookup(slews.back() + 2.0, loads.back() + 2.0);
    check.expect(beyond.clamped_slew && beyond.clamped_load,
                 format("case %zu: corner overflow not flagged", k));
    check.expect_within(
        std::fabs(beyond.value -
                  table.at(slews.size() - 1, loads.size() - 1)),
        format("case %zu: corner overflow not clamped to the corner", k));
  }
  check.done(cases);
  return check.result;
}

PropertyResult check_mlib_roundtrip(const PropertyOptions& opts) {
  // .mlib serialization: to_text -> from_text -> to_text is byte-stable
  // and the reparsed library compares equal, for randomized libraries.
  PropertyCheck check("mlib-roundtrip", 0.0);
  const std::size_t cases = opts.cases * 2;
  Rng rng(opts.seed ^ 0x316b5u);
  const std::vector<cells::Implementation> impls = {
      cells::Implementation::k2D, cells::Implementation::kMiv1Channel,
      cells::Implementation::kMiv2Channel, cells::Implementation::kMiv4Channel};
  for (std::size_t k = 0; k < cases; ++k) {
    charlib::CharLibrary lib;
    lib.slew_axis = random_axis(rng, 2 + rng.uniform_index(3));
    lib.load_axis = random_axis(rng, 2 + rng.uniform_index(3));
    const std::size_t n_entries = 1 + rng.uniform_index(4);
    for (std::size_t e = 0; e < n_entries; ++e) {
      const cells::CellType type =
          cells::all_cells()[rng.uniform_index(cells::all_cells().size())];
      const cells::Implementation impl = impls[rng.uniform_index(impls.size())];
      if (lib.find(impl, type) != nullptr) continue;
      charlib::CellChar cell;
      cell.type = type;
      cell.area = rng.uniform(1e-14, 1e-12);
      for (const std::string& pin : cells::cell_input_names(type)) {
        cell.input_cap.emplace_back(pin, rng.uniform(1e-17, 1e-15));
        for (const bool input_rise : {true, false}) {
          if (rng.uniform_index(4) == 0) continue;  // leave arc holes too
          charlib::ArcTables arc;
          arc.pin = pin;
          arc.input_rise = input_rise;
          arc.output_rise = rng.uniform_index(2) == 0;
          for (charlib::Table2D* t : {&arc.delay, &arc.out_slew, &arc.energy}) {
            *t = charlib::Table2D(lib.slew_axis, lib.load_axis);
            for (std::size_t i = 0; i < lib.slew_axis.size(); ++i)
              for (std::size_t j = 0; j < lib.load_axis.size(); ++j)
                t->set(i, j, rng.uniform(-1e-10, 1e-10));
          }
          cell.arcs.push_back(std::move(arc));
        }
      }
      lib.insert(impl, std::move(cell));
    }
    const std::string text = lib.to_text();
    const charlib::CharLibrary back = charlib::CharLibrary::from_text(text);
    check.expect(back == lib, format("case %zu: reparse not equal", k));
    check.expect(back.to_text() == text,
                 format("case %zu: render not byte-stable", k));
  }
  check.done(cases);
  return check.result;
}

}  // namespace

std::vector<PropertyResult> run_properties(const PropertyOptions& opts) {
  std::vector<PropertyResult> results;
  results.push_back(check_dcop_superposition(opts));
  results.push_back(check_dcop_scaling(opts));
  results.push_back(check_tran_scaling(opts));
  results.push_back(check_tran_time_shift(opts));
  results.push_back(check_rc_rl_closed_form(opts));
  results.push_back(check_dc_sweep_vs_dcop(opts));
  results.push_back(check_ac_vs_transient(opts));
  results.push_back(check_crossings_oracle(opts));
  results.push_back(check_unknown_name_roundtrip(opts));
  results.push_back(check_charlib_bilinear(opts));
  results.push_back(check_mlib_roundtrip(opts));
  return results;
}

bool all_passed(const std::vector<PropertyResult>& results) {
  for (const PropertyResult& r : results)
    if (!r.pass) return false;
  return true;
}

}  // namespace mivtx::verify
