// Property engine: metamorphic and analytic checks on the SPICE core.
//
// Each check states an invariant the physics guarantees independently of
// the implementation, so the oracle is never "the same code again":
//   dcop-superposition      linear circuits: x(V-sources) + x(I-sources)
//                           equals x(all sources) exactly
//   dcop-scaling            x(alpha * sources) == alpha * x(sources)
//   tran-scaling            linear transient response scales with the
//                           stimulus amplitude
//   tran-time-shift         shifting every breakpoint of the stimulus by
//                           dt shifts the response by dt
//   rc-rl-closed-form       RC / RL ramp responses against the analytic
//                           solution, swept over step-control settings
//   dc-sweep-vs-dcop        dc_sweep agrees with an independent operating
//                           point per sweep value
//   ac-vs-transient         AC magnitude/phase against a Fourier projection
//                           of the steady-state transient
//   crossings-oracle        find_crossings / next_crossing against a
//                           brute-force scanner on randomized waveforms
//                           (plateaus, exact hits, endpoint rules)
//   unknown-name-roundtrip  Circuit::unknown_name inverts node_unknown /
//                           branch_unknown on randomized circuits
//   charlib-bilinear        NLDM table lookups: exact at grid points,
//                           corner-hull bounded (hence monotone over
//                           monotone tables) between them, clamped and
//                           flagged beyond the hull
//   mlib-roundtrip          randomized .mlib libraries reparse equal and
//                           re-serialize byte-stably
//
// Determinism: everything derives from PropertyOptions::seed; there is no
// wall-clock or global state involved, so a failure replays exactly.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace mivtx::verify {

struct PropertyOptions {
  std::uint64_t seed = 20230913;  // SOCC'23 vibes; any value works
  std::size_t cases = 12;         // randomized instances per property
};

struct PropertyResult {
  std::string name;
  bool pass = true;
  std::size_t cases = 0;   // instances exercised
  double worst = 0.0;      // worst observed error (property-specific units)
  double bound = 0.0;      // the bound `worst` was held to
  std::string detail;      // first failure, or empty
};

// Run every property; results in a fixed order.
std::vector<PropertyResult> run_properties(const PropertyOptions& opts = {});

// True when every result passed (convenience for CLI/test callers).
bool all_passed(const std::vector<PropertyResult>& results);

}  // namespace mivtx::verify
