#include "waveform/measure.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace mivtx::waveform {

namespace {

inline int side_of(double v, double level) {
  return v > level ? 1 : (v < level ? -1 : 0);
}

constexpr std::size_t kNpos = static_cast<std::size_t>(-1);

// Stateful crossing scan implementing the at-level semantics documented in
// measure.h.  Emits crossings in time order through `emit`, which returns
// false to stop the scan early (next_crossing needs only the first match).
//
// State per position: the side (above/below) of the most recent sample
// strictly off the level, and the start index of the current run of
// samples sitting exactly on the level.  A crossing fires when a strict
// sample lands on the opposite side of that last strict side; its time is
// the moment the waveform first *reached* the level — the start of the
// at-level run when one exists, the linear interpolation inside the
// straddling segment otherwise.  A run the waveform enters and leaves on
// the same side (a touch) is not a crossing.
//
// `start` must be 0 or the index of a strictly-off-level sample; the
// leading start-at-level rule only applies to a scan from the true
// beginning (next_crossing backs up far enough that this never matters).
template <typename Emit>
void scan_crossings(const Waveform& w, double level, EdgeKind kind,
                    std::size_t start, Emit&& emit) {
  int last_side = 0;
  std::size_t run_start = kNpos;
  for (std::size_t i = start; i < w.size(); ++i) {
    const int s = side_of(w.value(i), level);
    if (s == 0) {
      if (run_start == kNpos) run_start = i;
      continue;
    }
    std::size_t cross_at = kNpos;
    double t = 0.0;
    if (last_side == 0) {
      // The waveform starts exactly on the level; its departure direction
      // names the edge and the crossing sits at the first sample.
      if (run_start != kNpos && start == 0) {
        cross_at = run_start;
        t = w.time(run_start);
      }
    } else if (s != last_side) {
      if (run_start != kNpos) {
        t = w.time(run_start);  // reached the level exactly on a sample
      } else {
        const double t0 = w.time(i - 1), t1 = w.time(i);
        const double v0 = w.value(i - 1), v1 = w.value(i);
        t = t0 + (level - v0) / (v1 - v0) * (t1 - t0);
      }
      cross_at = i;
    }
    if (cross_at != kNpos) {
      const EdgeKind edge = s > 0 ? EdgeKind::kRise : EdgeKind::kFall;
      if ((kind == EdgeKind::kAny || kind == edge) &&
          !emit(Crossing{t, edge})) {
        return;
      }
    }
    last_side = s;
    run_start = kNpos;
  }
  // The waveform ends exactly on the level after arriving from one side:
  // count it in the arrival direction (a solver step landing on the
  // measurement level at the end of the run is still a crossing).
  if (run_start != kNpos && last_side != 0) {
    const EdgeKind edge = last_side < 0 ? EdgeKind::kRise : EdgeKind::kFall;
    if (kind == EdgeKind::kAny || kind == edge) {
      emit(Crossing{w.time(run_start), edge});
    }
  }
}

}  // namespace

std::vector<Crossing> find_crossings(const Waveform& w, double level,
                                     EdgeKind kind) {
  std::vector<Crossing> out;
  scan_crossings(w, level, kind, 0, [&out](const Crossing& c) {
    out.push_back(c);
    return true;
  });
  return out;
}

std::optional<Crossing> next_crossing(const Waveform& w, double level,
                                      double after, EdgeKind kind) {
  if (w.empty()) return std::nullopt;
  // Greatest index k with time(k) <= after; every crossing at or after
  // `after` is produced while scanning samples at or beyond k.
  const std::vector<double>& times = w.times();
  const auto it = std::upper_bound(times.begin(), times.end(), after);
  std::size_t start =
      it == times.begin()
          ? 0
          : static_cast<std::size_t>(it - times.begin()) - 1;
  // Back up to the two nearest strictly-off-level samples: the scan state
  // at k (arrival side plus the start of any at-level run containing k)
  // then matches a scan from index 0 for every crossing reported at or
  // after `after`, so this returns exactly what filtering find_crossings
  // by time would.
  int stricts = side_of(w.value(start), level) != 0 ? 1 : 0;
  while (start > 0 && stricts < 2) {
    --start;
    if (side_of(w.value(start), level) != 0) ++stricts;
  }
  std::optional<Crossing> out;
  scan_crossings(w, level, kind, start, [&out, after](const Crossing& c) {
    if (c.time >= after) {
      out = c;
      return false;
    }
    return true;
  });
  return out;
}

std::optional<double> propagation_delay(const Waveform& input,
                                        const Waveform& output,
                                        double in_level, double out_level,
                                        double after, EdgeKind in_edge,
                                        EdgeKind out_edge) {
  const auto in_c = next_crossing(input, in_level, after, in_edge);
  if (!in_c) return std::nullopt;
  const auto out_c = next_crossing(output, out_level, in_c->time, out_edge);
  if (!out_c) return std::nullopt;
  return out_c->time - in_c->time;
}

std::optional<double> transition_time(const Waveform& w, double v_low,
                                      double v_high, double after,
                                      EdgeKind kind) {
  MIVTX_EXPECT(v_high > v_low, "transition_time: rails inverted");
  const double swing = v_high - v_low;
  const double lo = v_low + 0.1 * swing;
  const double hi = v_low + 0.9 * swing;
  if (kind == EdgeKind::kRise) {
    const auto t_lo = next_crossing(w, lo, after, EdgeKind::kRise);
    if (!t_lo) return std::nullopt;
    const auto t_hi = next_crossing(w, hi, t_lo->time, EdgeKind::kRise);
    if (!t_hi) return std::nullopt;
    return t_hi->time - t_lo->time;
  }
  if (kind == EdgeKind::kFall) {
    const auto t_hi = next_crossing(w, hi, after, EdgeKind::kFall);
    if (!t_hi) return std::nullopt;
    const auto t_lo = next_crossing(w, lo, t_hi->time, EdgeKind::kFall);
    if (!t_lo) return std::nullopt;
    return t_lo->time - t_hi->time;
  }
  const auto rise = transition_time(w, v_low, v_high, after, EdgeKind::kRise);
  const auto fall = transition_time(w, v_low, v_high, after, EdgeKind::kFall);
  if (rise && fall) return std::min(*rise, *fall);
  return rise ? rise : fall;
}

double average_supply_power(const Waveform& supply_current, double v_supply,
                            double t0, double t1) {
  return v_supply * supply_current.average(t0, t1);
}

double supply_energy(const Waveform& supply_current, double v_supply,
                     double t0, double t1) {
  return v_supply * supply_current.integral(t0, t1);
}

}  // namespace mivtx::waveform
