#include "waveform/measure.h"

#include <cmath>

#include "common/error.h"

namespace mivtx::waveform {

std::vector<Crossing> find_crossings(const Waveform& w, double level,
                                     EdgeKind kind) {
  std::vector<Crossing> out;
  for (std::size_t i = 0; i + 1 < w.size(); ++i) {
    const double v0 = w.value(i), v1 = w.value(i + 1);
    const bool rise = v0 < level && v1 >= level;
    const bool fall = v0 > level && v1 <= level;
    if (!rise && !fall) continue;
    const EdgeKind edge = rise ? EdgeKind::kRise : EdgeKind::kFall;
    if (kind != EdgeKind::kAny && kind != edge) continue;
    const double t0 = w.time(i), t1 = w.time(i + 1);
    const double f = (level - v0) / (v1 - v0);
    out.push_back(Crossing{t0 + f * (t1 - t0), edge});
  }
  return out;
}

std::optional<Crossing> next_crossing(const Waveform& w, double level,
                                      double after, EdgeKind kind) {
  for (const Crossing& c : find_crossings(w, level, kind)) {
    if (c.time >= after) return c;
  }
  return std::nullopt;
}

std::optional<double> propagation_delay(const Waveform& input,
                                        const Waveform& output,
                                        double in_level, double out_level,
                                        double after, EdgeKind in_edge,
                                        EdgeKind out_edge) {
  const auto in_c = next_crossing(input, in_level, after, in_edge);
  if (!in_c) return std::nullopt;
  const auto out_c = next_crossing(output, out_level, in_c->time, out_edge);
  if (!out_c) return std::nullopt;
  return out_c->time - in_c->time;
}

std::optional<double> transition_time(const Waveform& w, double v_low,
                                      double v_high, double after,
                                      EdgeKind kind) {
  MIVTX_EXPECT(v_high > v_low, "transition_time: rails inverted");
  const double swing = v_high - v_low;
  const double lo = v_low + 0.1 * swing;
  const double hi = v_low + 0.9 * swing;
  if (kind == EdgeKind::kRise) {
    const auto t_lo = next_crossing(w, lo, after, EdgeKind::kRise);
    if (!t_lo) return std::nullopt;
    const auto t_hi = next_crossing(w, hi, t_lo->time, EdgeKind::kRise);
    if (!t_hi) return std::nullopt;
    return t_hi->time - t_lo->time;
  }
  if (kind == EdgeKind::kFall) {
    const auto t_hi = next_crossing(w, hi, after, EdgeKind::kFall);
    if (!t_hi) return std::nullopt;
    const auto t_lo = next_crossing(w, lo, t_hi->time, EdgeKind::kFall);
    if (!t_lo) return std::nullopt;
    return t_lo->time - t_hi->time;
  }
  const auto rise = transition_time(w, v_low, v_high, after, EdgeKind::kRise);
  const auto fall = transition_time(w, v_low, v_high, after, EdgeKind::kFall);
  if (rise && fall) return std::min(*rise, *fall);
  return rise ? rise : fall;
}

double average_supply_power(const Waveform& supply_current, double v_supply,
                            double t0, double t1) {
  return v_supply * supply_current.average(t0, t1);
}

double supply_energy(const Waveform& supply_current, double v_supply,
                     double t0, double t1) {
  return v_supply * supply_current.integral(t0, t1);
}

}  // namespace mivtx::waveform
