// Measurement routines over waveforms: threshold crossings, propagation
// delay, rise/fall times, and supply-power accounting — the quantities the
// paper's Figure 5(a)/(b) report per standard cell.
#pragma once

#include <optional>
#include <vector>

#include "waveform/waveform.h"

namespace mivtx::waveform {

enum class EdgeKind { kRise, kFall, kAny };

struct Crossing {
  double time = 0.0;
  EdgeKind edge = EdgeKind::kRise;
};

// All times where the waveform crosses `level` with the requested edge
// direction, linearly interpolated.
//
// Samples sitting exactly on the level are part of the crossing, never a
// separate one:
//   - a crossing fires when the waveform passes from one strict side of
//     the level to the other, at the time it first *reaches* the level
//     (the start of an exactly-at-level plateau, or the interpolated point
//     inside the straddling segment);
//   - a plateau entered and left on the same side (a touch) is not a
//     crossing;
//   - a waveform that starts on the level crosses at its first sample, in
//     its departure direction; one that ends on the level crosses at the
//     first at-level sample, in its arrival direction.
//
// These semantics are pinned by an independent brute-force oracle in the
// verification property engine (src/verify/properties.cpp,
// "crossings-oracle"), which replays randomized plateau/touch/endpoint
// waveforms against this contract every mivtx_verify --props run.
std::vector<Crossing> find_crossings(const Waveform& w, double level,
                                     EdgeKind kind = EdgeKind::kAny);

// First crossing at/after `after`; nullopt if none.  Scans incrementally
// from a binary-searched start index instead of materializing every
// crossing — this runs once per measured arc in the PPA engine.
std::optional<Crossing> next_crossing(const Waveform& w, double level,
                                      double after,
                                      EdgeKind kind = EdgeKind::kAny);

// Propagation delay from the input's crossing of `in_level` (first edge at or
// after `after`) to the output's next crossing of `out_level`.
// Returns nullopt when either crossing is missing.
std::optional<double> propagation_delay(const Waveform& input,
                                        const Waveform& output,
                                        double in_level, double out_level,
                                        double after = 0.0,
                                        EdgeKind in_edge = EdgeKind::kAny,
                                        EdgeKind out_edge = EdgeKind::kAny);

// 10%-90% rise (or 90%-10% fall) time of the first full swing after `after`,
// with explicit low/high rails.
std::optional<double> transition_time(const Waveform& w, double v_low,
                                      double v_high, double after,
                                      EdgeKind kind);

// Average power drawn from a supply: mean over [t0, t1] of v_supply * i(t),
// with current measured flowing out of the source into the circuit.
double average_supply_power(const Waveform& supply_current, double v_supply,
                            double t0, double t1);

// Energy (J) over the window.
double supply_energy(const Waveform& supply_current, double v_supply,
                     double t0, double t1);

}  // namespace mivtx::waveform
