#include "waveform/waveform.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace mivtx::waveform {

Waveform::Waveform(std::vector<double> times, std::vector<double> values)
    : times_(std::move(times)), values_(std::move(values)) {
  MIVTX_EXPECT(times_.size() == values_.size(), "waveform: size mismatch");
  for (std::size_t i = 1; i < times_.size(); ++i)
    MIVTX_EXPECT(times_[i] > times_[i - 1], "waveform: time not increasing");
}

void Waveform::append(double t, double v) {
  MIVTX_EXPECT(times_.empty() || t > times_.back(),
               "waveform: appended time must increase");
  times_.push_back(t);
  values_.push_back(v);
}

void Waveform::clear() {
  times_.clear();
  values_.clear();
}

double Waveform::t_begin() const {
  MIVTX_EXPECT(!empty(), "waveform: empty");
  return times_.front();
}

double Waveform::t_end() const {
  MIVTX_EXPECT(!empty(), "waveform: empty");
  return times_.back();
}

std::size_t Waveform::locate(double t) const {
  // First index with times_[i] > t, minus one.
  const auto it = std::upper_bound(times_.begin(), times_.end(), t);
  if (it == times_.begin()) return 0;
  return static_cast<std::size_t>(it - times_.begin()) - 1;
}

double Waveform::sample(double t) const {
  MIVTX_EXPECT(!empty(), "waveform: empty");
  if (t <= times_.front()) return values_.front();
  if (t >= times_.back()) return values_.back();
  const std::size_t i = locate(t);
  const double t0 = times_[i], t1 = times_[i + 1];
  const double f = (t - t0) / (t1 - t0);
  return values_[i] + f * (values_[i + 1] - values_[i]);
}

double Waveform::min_value() const {
  MIVTX_EXPECT(!empty(), "waveform: empty");
  return *std::min_element(values_.begin(), values_.end());
}

double Waveform::max_value() const {
  MIVTX_EXPECT(!empty(), "waveform: empty");
  return *std::max_element(values_.begin(), values_.end());
}

double Waveform::integral(double t0, double t1) const {
  MIVTX_EXPECT(!empty(), "waveform: empty");
  MIVTX_EXPECT(t1 >= t0, "waveform: inverted integration window");
  if (t0 == t1) return 0.0;
  double acc = 0.0;
  double prev_t = t0;
  double prev_v = sample(t0);
  const std::size_t begin = locate(t0) + 1;
  for (std::size_t i = begin; i < times_.size() && times_[i] < t1; ++i) {
    acc += 0.5 * (prev_v + values_[i]) * (times_[i] - prev_t);
    prev_t = times_[i];
    prev_v = values_[i];
  }
  const double last_v = sample(t1);
  acc += 0.5 * (prev_v + last_v) * (t1 - prev_t);
  return acc;
}

double Waveform::average(double t0, double t1) const {
  MIVTX_EXPECT(t1 > t0, "waveform: degenerate averaging window");
  return integral(t0, t1) / (t1 - t0);
}

double Waveform::rms(double t0, double t1) const {
  MIVTX_EXPECT(t1 > t0, "waveform: degenerate rms window");
  // Integrate v^2 with the same trapezoid scheme on squared samples;
  // linear-in-v segments make this a close upper-accuracy approximation.
  double acc = 0.0;
  double prev_t = t0;
  double prev_v = sample(t0);
  const std::size_t begin = locate(t0) + 1;
  for (std::size_t i = begin; i < times_.size() && times_[i] < t1; ++i) {
    acc += 0.5 * (prev_v * prev_v + values_[i] * values_[i]) *
           (times_[i] - prev_t);
    prev_t = times_[i];
    prev_v = values_[i];
  }
  const double last_v = sample(t1);
  acc += 0.5 * (prev_v * prev_v + last_v * last_v) * (t1 - prev_t);
  return std::sqrt(acc / (t1 - t0));
}

Waveform Waveform::window(double t0, double t1) const {
  MIVTX_EXPECT(t1 > t0, "waveform: degenerate window");
  Waveform out;
  out.append(t0, sample(t0));
  for (std::size_t i = 0; i < times_.size(); ++i) {
    if (times_[i] > t0 && times_[i] < t1) out.append(times_[i], values_[i]);
  }
  if (t1 > out.times_.back()) out.append(t1, sample(t1));
  return out;
}

Waveform Waveform::combine(const Waveform& a, const Waveform& b,
                           double (*op)(double, double)) {
  MIVTX_EXPECT(!a.empty() && !b.empty(), "combine: empty operand");
  std::vector<double> grid;
  grid.reserve(a.size() + b.size());
  std::merge(a.times_.begin(), a.times_.end(), b.times_.begin(),
             b.times_.end(), std::back_inserter(grid));
  grid.erase(std::unique(grid.begin(), grid.end()), grid.end());
  Waveform out;
  for (double t : grid) out.append(t, op(a.sample(t), b.sample(t)));
  return out;
}

}  // namespace mivtx::waveform
