// Sampled waveform container: a strictly-increasing time axis with one value
// per sample, linear interpolation between samples.
//
// Transient simulation emits one Waveform per observed circuit quantity;
// the measurement routines in waveform/measure.h consume them.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace mivtx::waveform {

class Waveform {
 public:
  Waveform() = default;
  Waveform(std::vector<double> times, std::vector<double> values);

  void append(double t, double v);
  void clear();

  std::size_t size() const { return times_.size(); }
  bool empty() const { return times_.empty(); }
  double time(std::size_t i) const { return times_[i]; }
  double value(std::size_t i) const { return values_[i]; }
  const std::vector<double>& times() const { return times_; }
  const std::vector<double>& values() const { return values_; }

  double t_begin() const;
  double t_end() const;

  // Linear interpolation; clamps outside the time range.
  double sample(double t) const;

  double min_value() const;
  double max_value() const;

  // Time integral over [t0, t1] via trapezoids on the sample grid
  // (plus partial end segments).
  double integral(double t0, double t1) const;
  // integral / (t1 - t0).
  double average(double t0, double t1) const;
  double rms(double t0, double t1) const;

  // New waveform restricted to [t0, t1] with boundary samples interpolated.
  Waveform window(double t0, double t1) const;
  // Pointwise combination on the union of the two time grids.
  static Waveform combine(const Waveform& a, const Waveform& b,
                          double (*op)(double, double));

 private:
  std::size_t locate(double t) const;  // greatest i with times_[i] <= t
  std::vector<double> times_;
  std::vector<double> values_;
};

}  // namespace mivtx::waveform
