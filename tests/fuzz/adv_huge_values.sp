adversarial: values at double-precision extremes
V1 in 0 DC 1e300
R1 in out 1e-300
R2 out 0 1e300
C1 out 0 1e-45
.end
