adversarial: ideal current sources in series strand the middle node
I1 0 mid 1m
I2 mid 0 2m
.end
