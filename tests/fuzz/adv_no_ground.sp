adversarial: floating network with no node 0 anywhere
V1 a b DC 1.0
R1 b c 1k
R2 c a 1k
.end
