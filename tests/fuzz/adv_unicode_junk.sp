adversarial: control bytes and non-ascii in tokens
V1 in 0 DC 1.0
R§1 in ou€t 1k
.end
