adversarial: two ideal voltage sources in a loop disagree
V1 a 0 DC 1.0
V2 a 0 DC 2.0
.end
