adversarial: zero-valued resistor and capacitor-only node
V1 in 0 DC 1.0
R1 in out 0
C1 island 0 1p
.end
