mutated: garbage value token
V1 in 0 DC 1.0
R1 in 0 1kohmsplease
.end
