mutated: resistor to a node nothing else touches
V1 in 0 DC 1.0
R1 in out 1k
R2 in typo_net 1k
R3 out 0 1k
.end
