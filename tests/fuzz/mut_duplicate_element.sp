mutated: same element name declared twice
V1 in 0 DC 1.0
R1 in 0 1k
R1 in 0 2k
.end
