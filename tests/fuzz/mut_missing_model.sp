mutated: MOSFET references a model never declared
VDD vdd 0 DC 1.0
M1 out vdd 0 no_such_model
R1 out 0 1k
.end
