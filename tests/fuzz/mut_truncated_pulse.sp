mutated: PULSE() cut off mid-argument-list
V1 in 0 PULSE(0 1 100p
R1 in 0 1k
.end
