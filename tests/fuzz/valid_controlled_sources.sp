valid VCVS / VCCS pair
V1 a 0 DC 0.5
R1 a b 1k
E1 c 0 a b 2.0
G1 d 0 c 0 1m
R2 b 0 1k
R3 c d 500
R4 d 0 750
.end
