valid nonlinear MOS diode string
.model nch nmos LEVEL=70 VTH0=0.35 L=24n W=192n U0=0.03
V1 top 0 DC 1.0
M1 top top mid nch
M2 mid mid 0 nch
R1 top 0 100k
.end
