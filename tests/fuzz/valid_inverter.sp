valid MOS inverter with pulse input
.model nch nmos LEVEL=70 VTH0=0.35 L=24n W=192n U0=0.03
.model pch pmos LEVEL=70 VTH0=-0.35 L=24n W=192n U0=0.012
VDD vdd 0 DC 1.0
VIN in 0 PULSE(0 1 100p 20p 20p 200p)
M1 out in 0 nch
M2 out in vdd pch
C1 out 0 1f
.tran 50p 500p
.end
