valid RC divider
V1 in 0 DC 1.0
R1 in mid 1k
R2 mid 0 2k
C1 mid 0 1p
.tran 10p 1n
.end
