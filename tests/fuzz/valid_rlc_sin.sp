valid series RLC with sine drive
V1 in 0 SIN(0 0.5 1e8)
R1 in mid 50
L1 mid cap 1u
C1 cap 0 1p
.tran 1n 20n
.end
