// Per-test unique temporary directories.
//
// ::testing::TempDir() is one shared /tmp location: two build trees (or two
// ctest -j workers, or parallel CI jobs on one runner) running the same
// fixed-name test race on create/remove and corrupt each other's artifacts.
// unique_temp_dir() scopes the path by tag + pid + a per-process counter,
// so every call in every process gets a fresh directory.  The ScopedTempDir
// wrapper removes it on destruction (best-effort; /tmp reaping covers
// crashes).
#pragma once

#include <atomic>
#include <filesystem>
#include <string>

#include <gtest/gtest.h>

#ifdef _WIN32
#include <process.h>
#else
#include <unistd.h>
#endif

namespace mivtx::testutil {

inline std::filesystem::path unique_temp_dir(const std::string& tag) {
  static std::atomic<unsigned> counter{0};
#ifdef _WIN32
  const long pid = _getpid();
#else
  const long pid = static_cast<long>(::getpid());
#endif
  const std::filesystem::path dir =
      std::filesystem::path(::testing::TempDir()) /
      (tag + "_" + std::to_string(pid) + "_" +
       std::to_string(counter.fetch_add(1)));
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

class ScopedTempDir {
 public:
  explicit ScopedTempDir(const std::string& tag) : path_(unique_temp_dir(tag)) {}
  ~ScopedTempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path_, ec);
  }
  ScopedTempDir(const ScopedTempDir&) = delete;
  ScopedTempDir& operator=(const ScopedTempDir&) = delete;

  const std::filesystem::path& path() const { return path_; }
  std::string str() const { return path_.string(); }

 private:
  std::filesystem::path path_;
};

}  // namespace mivtx::testutil
