// Tests for mivtx::analyze: the diagnostics pipeline (fingerprints,
// severity config, baselines, SARIF), the relaxed Design representation,
// the electrical and tier rule passes, the slack-based STA (including the
// differential check against transistor-level transient simulation), and
// the .gnl mutation decks in tests/fuzz.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>

#include "analyze/analyzer.h"
#include "analyze/design.h"
#include "analyze/electrical.h"
#include "analyze/pipeline.h"
#include "analyze/sta.h"
#include "analyze/tier_rules.h"
#include "bsimsoi/model.h"
#include "cells/circuitgen.h"
#include "charlib/characterize.h"
#include "charlib/library.h"
#include "common/error.h"
#include "common/strings.h"
#include "core/ppa.h"
#include "core/reference_cards.h"
#include "runtime/exec_policy.h"
#include "runtime/thread_pool.h"
#include "spice/transient.h"
#include "waveform/measure.h"

namespace mivtx::analyze {
namespace {

using lint::Diagnostic;
using lint::Severity;

Diagnostic make_diag(Severity sev, const std::string& rule,
                     const std::string& message, const std::string& element,
                     const std::string& node, int line,
                     const std::string& file) {
  Diagnostic d;
  d.severity = sev;
  d.rule = rule;
  d.message = message;
  d.element = element;
  d.node = node;
  d.line = line;
  d.file = file;
  return d;
}

// Flat per-cell timing: every cell `delay` seconds, no load or slew
// sensitivity unless the caller dials it in.
gatelevel::TimingModel flat_timing(double delay = 1.0) {
  gatelevel::TimingModel m;
  m.c_ref = 1e-15;
  for (cells::Implementation impl : cells::all_implementations()) {
    m.load_slope[impl] = 0.0;
    for (cells::CellType t : cells::all_cells()) {
      gatelevel::CellTiming ct;
      ct.delay_ref = delay;
      m.cells[impl][t] = ct;
    }
  }
  return m;
}

// --- Pipeline: fingerprints, severity config, baselines, SARIF ------------

TEST(Pipeline, FingerprintIgnoresLineButNotIdentity) {
  const Diagnostic a =
      make_diag(Severity::kError, "rule-a", "msg", "u1", "n1", 10, "f.gnl");
  Diagnostic moved = a;
  moved.line = 99;  // an edit above the finding moved it
  EXPECT_EQ(fingerprint(a), fingerprint(moved));
  EXPECT_EQ(fingerprint(a).size(), 16u);

  Diagnostic other_rule = a;
  other_rule.rule = "rule-b";
  Diagnostic other_net = a;
  other_net.node = "n2";
  Diagnostic other_file = a;
  other_file.file = "g.gnl";
  EXPECT_NE(fingerprint(a), fingerprint(other_rule));
  EXPECT_NE(fingerprint(a), fingerprint(other_net));
  EXPECT_NE(fingerprint(a), fingerprint(other_file));
}

TEST(Pipeline, SeverityConfigRemapsAndSuppresses) {
  const Diagnostic err =
      make_diag(Severity::kError, "loud", "m", "", "", 0, "f");
  const Diagnostic warn =
      make_diag(Severity::kWarning, "gone", "m", "", "", 0, "f");
  const Diagnostic pinned =
      make_diag(Severity::kWarning, "keep", "m", "u9", "", 0, "f");

  const SeverityConfig config = SeverityConfig::parse(
      "# comment\n"
      "severity loud info\n"
      "suppress gone\n"
      "suppress-finding " + fingerprint(pinned) + "\n");
  const auto out = config.apply({err, warn, pinned});
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].rule, "loud");
  EXPECT_EQ(out[0].severity, Severity::kInfo);
}

TEST(Pipeline, SeverityConfigRejectsMalformedDirectives) {
  try {
    SeverityConfig::parse("severity only-two-tokens\n");
    FAIL() << "expected mivtx::Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("line 1"), std::string::npos);
  }
  EXPECT_THROW(SeverityConfig::parse("severity r nonsense\n"), Error);
  EXPECT_THROW(SeverityConfig::parse("frobnicate r\n"), Error);
}

TEST(Pipeline, BaselineRoundTripAndGating) {
  const Diagnostic known =
      make_diag(Severity::kError, "r1", "old finding", "u1", "", 3, "f");
  const Diagnostic fresh =
      make_diag(Severity::kError, "r2", "new finding", "u2", "", 7, "f");

  const std::string text = Baseline::serialize({known});
  const Baseline base = Baseline::parse(text);
  EXPECT_EQ(base.size(), 1u);
  EXPECT_TRUE(base.contains(fingerprint(known)));

  const auto gated = base.new_findings({known, fresh});
  ASSERT_EQ(gated.size(), 1u);
  EXPECT_EQ(gated[0].rule, "r2");

  // Round trip is stable: serializing the same findings reproduces the file.
  EXPECT_EQ(Baseline::serialize({known}), text);
}

TEST(Pipeline, SortDiagnosticsOrdersByFileLineRule) {
  std::vector<Diagnostic> diags = {
      make_diag(Severity::kWarning, "z-rule", "m", "", "", 5, "b.gnl"),
      make_diag(Severity::kWarning, "b-rule", "m", "", "", 5, "a.gnl"),
      make_diag(Severity::kWarning, "a-rule", "m", "", "", 9, "a.gnl"),
      make_diag(Severity::kWarning, "a-rule", "m", "", "", 5, "a.gnl"),
  };
  lint::sort_diagnostics(diags);
  EXPECT_EQ(diags[0].rule, "a-rule");
  EXPECT_EQ(diags[0].line, 5);
  EXPECT_EQ(diags[1].rule, "b-rule");
  EXPECT_EQ(diags[2].line, 9);
  EXPECT_EQ(diags[3].file, "b.gnl");
}

TEST(Pipeline, SarifRendererIsWellFormedAndOrderIndependent) {
  const Diagnostic e =
      make_diag(Severity::kError, "multi-driven-net", "2 drivers", "u1", "y",
                4, "bad.gnl");
  const Diagnostic w =
      make_diag(Severity::kWarning, "floating-net", "never read", "", "z", 2,
                "bad.gnl");
  const Diagnostic i = make_diag(Severity::kInfo, "tier-summary", "ok", "", "",
                                 0, "bad.gnl");

  const std::string sarif = render_sarif({e, w, i}, "mivtx_analyze", "1.0");
  EXPECT_NE(sarif.find("\"version\":\"2.1.0\""), std::string::npos);
  EXPECT_NE(sarif.find("\"name\":\"mivtx_analyze\""), std::string::npos);
  EXPECT_NE(sarif.find("\"ruleId\":\"multi-driven-net\""), std::string::npos);
  EXPECT_NE(sarif.find("\"level\":\"error\""), std::string::npos);
  EXPECT_NE(sarif.find("\"level\":\"warning\""), std::string::npos);
  EXPECT_NE(sarif.find("\"level\":\"note\""), std::string::npos);
  EXPECT_NE(sarif.find("\"uri\":\"bad.gnl\""), std::string::npos);
  EXPECT_NE(sarif.find("partialFingerprints"), std::string::npos);
  // Renderers sort internally: input order must not change the bytes.
  EXPECT_EQ(sarif, render_sarif({i, w, e}, "mivtx_analyze", "1.0"));
}

TEST(Pipeline, MaxSeverityDrivesGate) {
  EXPECT_FALSE(max_severity({}).has_value());
  const Diagnostic w =
      make_diag(Severity::kWarning, "r", "m", "", "", 0, "f");
  const Diagnostic e = make_diag(Severity::kError, "r", "m", "", "", 0, "f");
  EXPECT_EQ(max_severity({w}), Severity::kWarning);
  EXPECT_EQ(max_severity({w, e}), Severity::kError);
}

// --- Relaxed Design + .gnl parser -----------------------------------------

TEST(DesignParser, RoundTripsWellFormedText) {
  lint::DiagnosticSink sink;
  const Design d = parse_design(
      "# a comment\n"
      "design half_adder\n"
      "input a b\n"
      "output s c\n"
      "gate XOR2X1 u_s a b s\n"
      "gate AND2X1 u_c a b c\n",
      sink);
  EXPECT_EQ(sink.diagnostics().size(), 0u);
  EXPECT_EQ(d.name, "half_adder");
  ASSERT_EQ(d.gates.size(), 2u);
  EXPECT_EQ(d.gates[0].type, cells::CellType::kXor2);
  EXPECT_EQ(d.gates[0].line, 5);

  lint::DiagnosticSink sink2;
  const Design back = parse_design(to_gnl_text(d), sink2);
  EXPECT_EQ(sink2.diagnostics().size(), 0u);
  EXPECT_EQ(to_gnl_text(back), to_gnl_text(d));
}

TEST(DesignParser, DiagnosesUnknownCellAndBadArity) {
  lint::DiagnosticSink sink;
  const Design d = parse_design(
      "design broken\n"
      "input a\n"
      "output y\n"
      "gate FROB9000 u1 a y\n"
      "gate NAND2X1 u2 a y\n"  // NAND2 wants 2 inputs
      "gate\n",
      sink);
  ASSERT_EQ(d.gates.size(), 2u);  // both bad gates kept, bare "gate" dropped
  EXPECT_FALSE(d.gates[0].type.has_value());
  std::size_t unknown = 0, arity = 0, parse = 0;
  for (const Diagnostic& diag : sink.diagnostics()) {
    if (diag.rule == "unknown-cell") ++unknown;
    if (diag.rule == "bad-arity") ++arity;
    if (diag.rule == "parse-error") ++parse;
  }
  EXPECT_EQ(unknown, 1u);
  EXPECT_EQ(arity, 1u);
  EXPECT_EQ(parse, 1u);
}

TEST(DesignParser, NetlistConversionRoundTrips) {
  const gatelevel::GateNetlist rca = gatelevel::ripple_carry_adder(4);
  const Design d = design_from_netlist(rca);
  EXPECT_EQ(d.gates.size(), rca.instances().size());
  const auto back = to_gate_netlist(d);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->instances().size(), rca.instances().size());
  // Functional equivalence on one vector: 7 + 9 + 1 = 17.
  std::map<std::string, bool> in;
  for (std::size_t i = 0; i < 4; ++i) {
    in[format("a%zu", i)] = (7u >> i) & 1u;
    in[format("b%zu", i)] = (9u >> i) & 1u;
  }
  in["cin"] = true;
  EXPECT_EQ(rca.evaluate(in), back->evaluate(in));
}

TEST(DesignParser, ConversionRejectsBrokenDesigns) {
  lint::DiagnosticSink sink;
  const Design d = parse_design(
      "design dup\n"
      "input a\n"
      "output y\n"
      "gate INV1X1 u1 a y\n"
      "gate INV1X1 u2 a y\n",
      sink);
  EXPECT_FALSE(to_gate_netlist(d).has_value());
}

// --- Electrical rules ------------------------------------------------------

std::size_t count_rule(const lint::DiagnosticSink& sink,
                       const std::string& rule) {
  std::size_t n = 0;
  for (const Diagnostic& d : sink.diagnostics()) {
    if (d.rule == rule) ++n;
  }
  return n;
}

TEST(Electrical, FlagsConnectivityViolations) {
  lint::DiagnosticSink parse_sink;
  const Design d = parse_design(
      "design broken\n"
      "input a unused_in\n"
      "output y no_driver_out\n"
      "gate INV1X1 u1 a y\n"
      "gate INV1X1 u1 a dead\n"        // duplicate name + floating output
      "gate INV1X1 u3 ghost lonely\n"  // undriven input net
      ,
      parse_sink);
  lint::DiagnosticSink sink;
  const std::size_t errors = analyze_electrical(d, sink);
  EXPECT_EQ(count_rule(sink, "duplicate-instance"), 1u);
  EXPECT_EQ(count_rule(sink, "undriven-net"), 1u);       // ghost
  EXPECT_EQ(count_rule(sink, "undriven-output"), 1u);    // no_driver_out
  EXPECT_EQ(count_rule(sink, "unused-input"), 1u);       // unused_in
  EXPECT_GE(count_rule(sink, "floating-net"), 1u);       // dead, lonely
  EXPECT_GE(count_rule(sink, "unreachable-logic"), 1u);  // u1 dup + u3
  EXPECT_EQ(errors, sink.num_errors());
  EXPECT_GE(errors, 3u);
}

TEST(Electrical, LocalizesCombinationalLoop) {
  lint::DiagnosticSink parse_sink;
  const Design d = parse_design(
      "design looped\n"
      "input a\n"
      "output y\n"
      "gate NAND2X1 u_in a r3 r1\n"
      "gate INV1X1 u_mid r1 r2\n"
      "gate INV1X1 u_back r2 r3\n"
      "gate INV1X1 u_out r1 y\n",
      parse_sink);
  lint::DiagnosticSink sink;
  analyze_electrical(d, sink);
  ASSERT_EQ(count_rule(sink, "combinational-loop"), 1u);
  for (const Diagnostic& diag : sink.diagnostics()) {
    if (diag.rule != "combinational-loop") continue;
    // All three members listed, deterministically ordered.
    EXPECT_NE(diag.message.find("u_back"), std::string::npos);
    EXPECT_NE(diag.message.find("u_in"), std::string::npos);
    EXPECT_NE(diag.message.find("u_mid"), std::string::npos);
  }
  // Loop members must not also be flagged unreachable.
  EXPECT_EQ(count_rule(sink, "unreachable-logic"), 0u);
}

TEST(Electrical, MultiDrivenCoDriversAreNotUnreachable) {
  lint::DiagnosticSink parse_sink;
  const Design d = parse_design(
      "design dup\n"
      "input a\n"
      "output y\n"
      "gate INV1X1 u1 a y\n"
      "gate INV1X1 u2 a y\n",
      parse_sink);
  lint::DiagnosticSink sink;
  analyze_electrical(d, sink);
  EXPECT_EQ(count_rule(sink, "multi-driven-net"), 1u);
  // Both contenders drive the primary output; neither is a dead cone.
  EXPECT_EQ(count_rule(sink, "unreachable-logic"), 0u);
}

TEST(Electrical, FanoutAndLoadBudgets) {
  // One inverter driving 9 readers (budget 8).
  std::ostringstream gnl;
  gnl << "design fan\ninput a\noutput";
  for (int i = 0; i < 9; ++i) gnl << " y" << i;
  gnl << "\ngate INV1X1 u_drv a x\n";
  for (int i = 0; i < 9; ++i)
    gnl << "gate INV1X1 u_l" << i << " x y" << i << "\n";
  lint::DiagnosticSink parse_sink;
  const Design d = parse_design(gnl.str(), parse_sink);

  lint::DiagnosticSink sink;
  analyze_electrical(d, sink);
  EXPECT_EQ(count_rule(sink, "max-fanout"), 1u);
  EXPECT_EQ(count_rule(sink, "max-load-cap"), 0u);  // no timing model

  // With a timing model whose pins are huge, the load budget trips too.
  gatelevel::TimingModel m = flat_timing();
  for (auto& [impl, per_cell] : m.cells) {
    for (auto& [t, ct] : per_cell) ct.input_cap = 5e-15;
  }
  ElectricalRuleOptions opts;
  opts.timing = &m;  // 9 pins x 5 fF = 45 fF > 20 fF budget
  lint::DiagnosticSink sink2;
  analyze_electrical(d, sink2, opts);
  EXPECT_EQ(count_rule(sink2, "max-load-cap"), 1u);
}

TEST(Electrical, CleanDesignIsQuiet) {
  const Design d = design_from_netlist(gatelevel::ripple_carry_adder(4));
  lint::DiagnosticSink sink;
  const std::size_t errors = analyze_electrical(d, sink);
  EXPECT_EQ(errors, 0u);
  EXPECT_EQ(sink.diagnostics().size(), 0u) << sink.render_text();
}

// --- Slack-based STA -------------------------------------------------------

TEST(SlackSta, AgreesWithArrivalOnlySta) {
  const gatelevel::GateNetlist n = gatelevel::ripple_carry_adder(8);
  const gatelevel::TimingModel m = flat_timing(2.0);
  const auto arrival =
      gatelevel::run_sta(n, m, cells::Implementation::k2D);
  const SlackStaResult slack =
      run_slack_sta(n, m, cells::Implementation::k2D);
  EXPECT_DOUBLE_EQ(slack.worst_arrival, arrival.critical_delay);
  EXPECT_EQ(slack.worst_endpoint, arrival.critical_output);
  // Relative analysis: worst slack is exactly zero, nothing is negative.
  EXPECT_DOUBLE_EQ(slack.worst_slack, 0.0);
  for (const auto& [net, t] : slack.nets) EXPECT_GE(t.slack, -1e-15) << net;
}

TEST(SlackSta, ReconvergentFanoutSlacks) {
  // a -> u_slow(XOR2, d=4) -> s ─┐
  // a ───────────────────────────┴ u_join(NAND2, d=2) -> y
  gatelevel::GateNetlist n("reconv");
  n.add_input("a");
  n.add_input("b");
  n.add_instance(cells::CellType::kXor2, "u_slow", {"a", "b"}, "s");
  n.add_instance(cells::CellType::kNand2, "u_join", {"a", "s"}, "y");
  n.add_output("y");
  n.finalize();

  gatelevel::TimingModel m = flat_timing(1.0);
  for (auto& [impl, per_cell] : m.cells) {
    per_cell[cells::CellType::kXor2].delay_ref = 4.0;
    per_cell[cells::CellType::kNand2].delay_ref = 2.0;
  }
  const SlackStaResult r = run_slack_sta(n, m, cells::Implementation::k2D);
  EXPECT_DOUBLE_EQ(r.worst_arrival, 6.0);
  // Through the slow arc, `s` is critical: slack 0.  The direct a->u_join
  // arc has 4 units of margin, but net `a` also launches the critical
  // branch, so its slack (the min over fanout arcs) is 0.
  EXPECT_DOUBLE_EQ(r.nets.at("s").slack, 0.0);
  EXPECT_DOUBLE_EQ(r.nets.at("a").slack, 0.0);
  EXPECT_DOUBLE_EQ(r.nets.at("y").slack, 0.0);
  // b only feeds the critical XOR: slack 0 as well.
  EXPECT_DOUBLE_EQ(r.nets.at("b").slack, 0.0);
  EXPECT_EQ(r.nets.at("y").critical_from, "s");
}

TEST(SlackSta, NonCriticalSideBranchHasPositiveSlack) {
  // Critical chain of three, plus a one-gate side branch to its own output.
  gatelevel::GateNetlist n("side");
  n.add_input("a");
  n.add_instance(cells::CellType::kInv1, "u1", {"a"}, "x1");
  n.add_instance(cells::CellType::kInv1, "u2", {"x1"}, "x2");
  n.add_instance(cells::CellType::kInv1, "u3", {"x2"}, "y");
  n.add_instance(cells::CellType::kInv1, "u_side", {"a"}, "z");
  n.add_output("y");
  n.add_output("z");
  n.finalize();
  const SlackStaResult r =
      run_slack_sta(n, flat_timing(1.0), cells::Implementation::k2D);
  EXPECT_DOUBLE_EQ(r.worst_arrival, 3.0);
  EXPECT_DOUBLE_EQ(r.nets.at("z").arrival, 1.0);
  EXPECT_DOUBLE_EQ(r.nets.at("z").slack, 2.0);
  EXPECT_DOUBLE_EQ(r.nets.at("x1").slack, 0.0);
}

TEST(SlackSta, TieBreaksTowardSmallestDrivingNet) {
  // Two exactly equal paths join at u_join; the report must deterministically
  // blame the lexicographically smallest driving net.
  gatelevel::GateNetlist n("tie");
  n.add_input("a");
  n.add_input("b");
  n.add_instance(cells::CellType::kInv1, "u_q", {"a"}, "q");
  n.add_instance(cells::CellType::kInv1, "u_p", {"b"}, "p");
  n.add_instance(cells::CellType::kNand2, "u_join", {"q", "p"}, "y");
  n.add_output("y");
  n.finalize();
  const SlackStaResult r =
      run_slack_sta(n, flat_timing(1.0), cells::Implementation::k2D);
  EXPECT_EQ(r.nets.at("y").critical_from, "p");
  ASSERT_FALSE(r.paths.empty());
  ASSERT_EQ(r.paths[0].points.size(), 3u);
  EXPECT_EQ(r.paths[0].points[1].net, "p");
}

TEST(SlackSta, ClockPeriodSetsRequiredTimes) {
  gatelevel::GateNetlist n("chain");
  n.add_input("a");
  n.add_instance(cells::CellType::kInv1, "u1", {"a"}, "x");
  n.add_instance(cells::CellType::kInv1, "u2", {"x"}, "y");
  n.add_output("y");
  n.finalize();
  StaOptions opts;
  opts.clock_period = 1.5;  // arrival 2.0 -> slack -0.5
  const SlackStaResult r =
      run_slack_sta(n, flat_timing(1.0), cells::Implementation::k2D, opts);
  EXPECT_DOUBLE_EQ(r.nets.at("y").required, 1.5);
  EXPECT_DOUBLE_EQ(r.nets.at("y").slack, -0.5);
  EXPECT_DOUBLE_EQ(r.worst_slack, -0.5);
  ASSERT_FALSE(r.paths.empty());
  EXPECT_DOUBLE_EQ(r.paths[0].slack, -0.5);
}

TEST(SlackSta, WorstPathsAreSortedAndBounded) {
  const gatelevel::GateNetlist n = gatelevel::ripple_carry_adder(8);
  StaOptions opts;
  opts.worst_paths = 3;
  const SlackStaResult r =
      run_slack_sta(n, flat_timing(1.0), cells::Implementation::k2D, opts);
  ASSERT_EQ(r.paths.size(), 3u);
  EXPECT_LE(r.paths[0].slack, r.paths[1].slack);
  EXPECT_LE(r.paths[1].slack, r.paths[2].slack);
  EXPECT_EQ(r.paths[0].endpoint, r.worst_endpoint);
  // Path points are contiguous: every step moves through one instance.
  for (const TimingPath& p : r.paths) {
    ASSERT_GE(p.points.size(), 2u);
    EXPECT_EQ(p.points.back().net, p.endpoint);
    for (std::size_t i = 1; i < p.points.size(); ++i) {
      EXPECT_GE(p.points[i].arrival, p.points[i - 1].arrival);
    }
  }
}

TEST(SlackSta, SlewPropagationAddsDelay) {
  gatelevel::GateNetlist n("chain");
  n.add_input("a");
  n.add_instance(cells::CellType::kInv1, "u1", {"a"}, "x");
  n.add_instance(cells::CellType::kInv1, "u2", {"x"}, "y");
  n.add_output("y");
  n.finalize();

  gatelevel::TimingModel m = flat_timing(1.0);
  const SlackStaResult crisp =
      run_slack_sta(n, m, cells::Implementation::k2D);
  for (auto& [impl, per_cell] : m.cells) {
    for (auto& [t, ct] : per_cell) {
      ct.slew_ref = 0.5;
      ct.slew_sens = 0.2;  // +0.2 delay per unit of input transition
    }
  }
  const SlackStaResult slewed =
      run_slack_sta(n, m, cells::Implementation::k2D);
  // u1 sees the (zero) input slew; u2 sees u1's 0.5 output transition.
  EXPECT_DOUBLE_EQ(crisp.worst_arrival, 2.0);
  EXPECT_DOUBLE_EQ(slewed.worst_arrival, 2.0 + 0.2 * 0.5);
  EXPECT_DOUBLE_EQ(slewed.nets.at("x").slew, 0.5);

  // Input slew at the primary inputs feeds the first stage.
  StaOptions opts;
  opts.input_slew = 1.0;
  const SlackStaResult driven =
      run_slack_sta(n, m, cells::Implementation::k2D, opts);
  EXPECT_DOUBLE_EQ(driven.worst_arrival, 2.0 + 0.2 * 1.0 + 0.2 * 0.5);
}

// --- Differential: slack STA vs transistor-level transient -----------------

namespace diff {

// One CMOS inverter stage: traditional-FDSOI p-type on the bottom tier,
// 2D n-type on top, no interconnect parasitics (both sides of the
// comparison see identical electricals).
void add_inverter(spice::Circuit& ckt, const std::string& name,
                  const std::string& in, const std::string& out,
                  spice::NodeId vdd, const cells::ModelSet& models) {
  ckt.add_mosfet("MP_" + name, ckt.node(out), ckt.node(in), vdd, models.pmos);
  ckt.add_mosfet("MN_" + name, ckt.node(out), ckt.node(in), spice::kGround,
                 models.nmos);
}

struct EdgePair {
  double rising = 0.0;   // input rising edge -> output delay
  double falling = 0.0;  // input falling edge -> output delay
  double mean() const { return 0.5 * (rising + falling); }
};

// 50%-to-50% delays for both edges of the stimulus pulse.
EdgePair measure_delays(const spice::TransientResult& tran,
                        const std::string& in, const std::string& out,
                        double t_fall_edge) {
  EdgePair out_delays;
  const auto rise = waveform::propagation_delay(tran.v(in), tran.v(out), 0.5,
                                                0.5, /*after=*/0.0);
  const auto fall = waveform::propagation_delay(tran.v(in), tran.v(out), 0.5,
                                                0.5, t_fall_edge);
  EXPECT_TRUE(rise.has_value());
  EXPECT_TRUE(fall.has_value());
  out_delays.rising = rise.value_or(0.0);
  out_delays.falling = fall.value_or(0.0);
  return out_delays;
}

// Single inverter driving `c_load`; returns the mean propagation delay.
double single_stage_delay(const cells::ModelSet& models, double c_load,
                          double input_edge) {
  spice::Circuit ckt;
  const spice::NodeId vdd = ckt.node("vdd");
  ckt.add_vsource("VDD", vdd, spice::kGround, spice::SourceSpec::DC(1.0));
  spice::PulseSpec pulse;
  pulse.v1 = 0.0;
  pulse.v2 = 1.0;
  pulse.delay = 100e-12;
  pulse.rise = input_edge;
  pulse.fall = input_edge;
  pulse.width = 600e-12;
  ckt.add_vsource("VIN", ckt.node("in"), spice::kGround,
                  spice::SourceSpec::Pulse(pulse));
  add_inverter(ckt, "u1", "in", "out", vdd, models);
  ckt.add_capacitor("CL", ckt.find_node("out"), spice::kGround, c_load);

  spice::TransientOptions opts;
  opts.t_stop = 1.4e-9;
  opts.h_max = 5e-12;
  const spice::TransientResult tran = spice::transient(ckt, opts);
  EXPECT_TRUE(tran.ok) << tran.error;
  return measure_delays(tran, "in", "out", /*t_fall_edge=*/650e-12).mean();
}

}  // namespace diff

TEST(SlackSta, DifferentialAgainstTransientChain) {
  const core::PpaEngine engine(core::reference_model_library());
  const cells::ModelSet models =
      engine.model_set(cells::Implementation::k2D);

  // Calibrate a one-cell timing model from two transistor-level load
  // points, exactly like core::build_timing_model but on the bare stage.
  const double input_edge = 20e-12;
  const double d_1f = diff::single_stage_delay(models, 1e-15, input_edge);
  const double d_2f = diff::single_stage_delay(models, 2e-15, input_edge);
  ASSERT_GT(d_1f, 0.0);
  ASSERT_GT(d_2f, d_1f);

  gatelevel::TimingModel m;
  m.c_ref = 1e-15;
  const double cin =
      bsimsoi::eval(models.nmos, 0.5, 0.5, 0.0).dqg[bsimsoi::kDvG] +
      bsimsoi::eval(models.pmos, -0.5, -0.5, 0.0).dqg[bsimsoi::kDvG];
  gatelevel::CellTiming ct;
  ct.delay_ref = d_1f;
  ct.input_cap = cin;
  m.cells[cells::Implementation::k2D][cells::CellType::kInv1] = ct;
  m.load_slope[cells::Implementation::k2D] = (d_2f - d_1f) / 1e-15;

  // Transistor-level three-inverter chain with 1 fF on every stage output.
  spice::Circuit ckt;
  const spice::NodeId vdd = ckt.node("vdd");
  ckt.add_vsource("VDD", vdd, spice::kGround, spice::SourceSpec::DC(1.0));
  spice::PulseSpec pulse;
  pulse.v1 = 0.0;
  pulse.v2 = 1.0;
  pulse.delay = 100e-12;
  pulse.rise = input_edge;
  pulse.fall = input_edge;
  pulse.width = 600e-12;
  ckt.add_vsource("VIN", ckt.node("in"), spice::kGround,
                  spice::SourceSpec::Pulse(pulse));
  diff::add_inverter(ckt, "u1", "in", "x1", vdd, models);
  diff::add_inverter(ckt, "u2", "x1", "x2", vdd, models);
  diff::add_inverter(ckt, "u3", "x2", "y", vdd, models);
  ckt.add_capacitor("C1", ckt.find_node("x1"), spice::kGround, 1e-15);
  ckt.add_capacitor("C2", ckt.find_node("x2"), spice::kGround, 1e-15);
  ckt.add_capacitor("C3", ckt.find_node("y"), spice::kGround, 1e-15);

  spice::TransientOptions topts;
  topts.t_stop = 1.4e-9;
  topts.h_max = 5e-12;
  const spice::TransientResult tran = spice::transient(ckt, topts);
  ASSERT_TRUE(tran.ok) << tran.error;
  const double tran_delay =
      diff::measure_delays(tran, "in", "y", 650e-12).mean();
  ASSERT_GT(tran_delay, 0.0);

  // STA over the same chain: each internal net carries the 1 fF lumped cap
  // on top of the next stage's gate; the endpoint load is exactly 1 fF.
  gatelevel::GateNetlist n("chain3");
  n.add_input("in");
  n.add_instance(cells::CellType::kInv1, "u1", {"in"}, "x1");
  n.add_instance(cells::CellType::kInv1, "u2", {"x1"}, "x2");
  n.add_instance(cells::CellType::kInv1, "u3", {"x2"}, "y");
  n.add_output("y");
  n.finalize();
  StaOptions opts;
  opts.loads.extra_net_load["x1"] = 1e-15;
  opts.loads.extra_net_load["x2"] = 1e-15;
  const SlackStaResult sta =
      run_slack_sta(n, m, cells::Implementation::k2D, opts);

  // The load model is linear and the calibration single-edge; agreement
  // within 25 % demonstrates the slack STA tracks the physics.
  EXPECT_NEAR(sta.worst_arrival, tran_delay, 0.25 * tran_delay)
      << "STA " << sta.worst_arrival << " vs transient " << tran_delay;
}

// --- Differential: library STA vs transistor-level gate chains -------------

namespace chaindiff {

struct ChainCase {
  cells::Implementation impl;
  std::vector<cells::CellType> stages;
  std::vector<double> loads;  // F, one per stage output
  std::vector<std::size_t> taps;
};

// Boolean chain output for a given chain-input value, under the same side
// constants build_gate_chain ties off.
bool chain_output_value(const std::vector<cells::CellType>& stages, bool in) {
  bool v = in;
  for (const cells::CellType type : stages) {
    std::vector<bool> pins = cells::chain_side_values(type);
    pins[0] = v;
    v = cells::cell_logic(type, pins);
  }
  return v;
}

}  // namespace chaindiff

TEST(LibSta, DifferentialAgainstTransientChains) {
  // The NLDM tables and the chains are measured through the same transient
  // engine but at different operating points: the library sees isolated
  // cells on the characterization grid, the chain sees each stage driven
  // by its real predecessor's waveform.  Bilinear interpolation + slew
  // propagation must close that gap to 15 % on every chain, impl and edge.
  const core::ModelLibrary& mlib = core::reference_model_library();
  runtime::ThreadPool pool;
  const charlib::CharOptions copts;  // default 3x3 grid, reference physics
  const charlib::Characterizer characterizer(
      mlib, copts, {}, runtime::ExecPolicy{&pool, nullptr});
  const double vdd = copts.ppa.vdd;
  const double half = 0.5 * vdd;

  using cells::CellType;
  using cells::Implementation;
  const std::vector<chaindiff::ChainCase> cases = {
      {Implementation::k2D,
       {CellType::kInv1, CellType::kNand2, CellType::kNor2},
       {1e-15, 2e-15, 1e-15},
       {}},
      {Implementation::kMiv1Channel,
       {CellType::kInv1, CellType::kAnd2, CellType::kNand2, CellType::kInv1,
        CellType::kNor2},
       {0.5e-15, 1e-15, 2e-15, 1e-15, 2e-15},
       {1}},
      // The slower MIV flavors keep their mid-chain loads lighter: a 2 fF
      // internal net already pushes a 2/4-channel gate's output transition
      // past the 100 ps slew-axis edge, and the point here is agreement
      // *inside* the characterized hull (clamping has its own tests).
      {Implementation::kMiv2Channel,
       {CellType::kInv1, CellType::kNor2, CellType::kInv1, CellType::kNand2,
        CellType::kAnd2, CellType::kInv1},
       {1e-15, 0.75e-15, 0.5e-15, 1e-15, 1.5e-15, 4e-15},
       {2}},
      {Implementation::kMiv4Channel,
       {CellType::kInv1, CellType::kNand2, CellType::kInv1, CellType::kNor2,
        CellType::kInv1, CellType::kAnd2, CellType::kNand2, CellType::kInv1},
       {1e-15, 1.5e-15, 1e-15, 0.5e-15, 1.5e-15, 1e-15, 1.5e-15, 4e-15},
       {3, 5}},
  };

  for (const chaindiff::ChainCase& cs : cases) {
    SCOPED_TRACE(std::string(cells::impl_name(cs.impl)) + " chain of " +
                 std::to_string(cs.stages.size()));
    ASSERT_EQ(cs.stages.front(), CellType::kInv1)
        << "first stage must be single-input so both STA launch edges "
           "traverse the chain, not a side-pin arc";

    // Characterize exactly the cells this chain instantiates.
    std::set<CellType> used(cs.stages.begin(), cs.stages.end());
    if (!cs.taps.empty()) used.insert(CellType::kInv1);
    std::vector<std::pair<CellType, Implementation>> jobs;
    for (const CellType t : used) jobs.emplace_back(t, cs.impl);
    const charlib::CharLibrary lib = characterizer.characterize(jobs);

    // Transistor-level reference: the same cells, stitched.
    const core::PpaEngine engine(mlib, copts.ppa);
    const cells::ModelSet models = engine.model_set(cs.impl);
    cells::GateChainSpec spec;
    spec.stages = cs.stages;
    spec.stage_loads = cs.loads;
    spec.fanout_taps = cs.taps;
    const cells::GeneratedCircuit gen = cells::build_gate_chain(
        spec, cs.impl, models, copts.ppa.parasitics, vdd);

    spice::TransientOptions topt;
    topt.t_stop = spec.t_delay + 2.0 * spec.t_width + 500e-12;
    topt.h_max = copts.ppa.h_max;
    topt.newton = copts.ppa.newton;
    const spice::TransientResult tran = spice::transient(gen.circuit, topt);
    ASSERT_TRUE(tran.ok) << tran.error;

    using waveform::EdgeKind;
    const auto& v_in = tran.v("in");
    const auto& v_out = tran.v(gen.probe_node);
    const auto d_rise = waveform::propagation_delay(
        v_in, v_out, half, half, 0.0, EdgeKind::kRise, EdgeKind::kAny);
    const auto d_fall = waveform::propagation_delay(
        v_in, v_out, half, half, spec.t_delay + spec.t_width - 50e-12,
        EdgeKind::kFall, EdgeKind::kAny);
    ASSERT_TRUE(d_rise.has_value());
    ASSERT_TRUE(d_fall.has_value());

    // Gate-level twin of the chain: pin 0 carries the chain, side pins tie
    // to constant primary inputs (their arcs launch at t=0 and can never
    // out-arrive the accumulating chain path past the first stage).
    bool need_tie0 = false, need_tie1 = false;
    for (const CellType t : cs.stages) {
      const std::vector<bool> side = cells::chain_side_values(t);
      for (std::size_t k = 1; k < side.size(); ++k)
        (side[k] ? need_tie1 : need_tie0) = true;
    }
    gatelevel::GateNetlist n(gen.name);
    n.add_input("in");
    if (need_tie0) n.add_input("tie0");
    if (need_tie1) n.add_input("tie1");
    LibStaOptions lopts;
    lopts.input_slew = spec.t_edge;
    lopts.loads.default_output_load = 0.0;  // every load is explicit below
    std::string prev = "in";
    for (std::size_t i = 0; i < cs.stages.size(); ++i) {
      const std::string si = std::to_string(i);
      const std::vector<bool> side = cells::chain_side_values(cs.stages[i]);
      std::vector<std::string> ins{prev};
      for (std::size_t k = 1; k < side.size(); ++k)
        ins.push_back(side[k] ? "tie1" : "tie0");
      const std::string out = "x" + std::to_string(i + 1);
      n.add_instance(cs.stages[i], "s" + si, ins, out);
      lopts.loads.extra_net_load[out] = cs.loads[i];
      if (std::find(cs.taps.begin(), cs.taps.end(), i) != cs.taps.end()) {
        n.add_instance(CellType::kInv1, "t" + si, {out}, "ty" + si);
        n.add_output("ty" + si);
        lopts.loads.extra_net_load["ty" + si] = copts.ppa.parasitics.c_load;
      }
      prev = out;
    }
    n.add_output(prev);
    n.finalize();

    const LibStaResult sta = run_library_sta(n, lib, cs.impl, lopts);
    EXPECT_TRUE(sta.missing.empty());
    std::ostringstream slews;
    for (const auto& [net, t] : sta.nets)
      slews << "  " << net << " rise " << t.rise.slew << " fall "
            << t.fall.slew << "\n";
    EXPECT_EQ(sta.clamped_lookups, 0u)
        << "chain operating point left the characterization grid; "
           "propagated slews:\n"
        << slews.str();

    // Input-rise drives the output to its in=1 value; map each stimulus
    // edge to the output edge it produces and compare per edge.
    const bool rise_makes_rise =
        chaindiff::chain_output_value(cs.stages, true);
    const LibNetTiming& po = sta.nets.at(prev);
    const double sta_in_rise = po.edge(rise_makes_rise).arrival;
    const double sta_in_fall = po.edge(!rise_makes_rise).arrival;
    EXPECT_NEAR(sta_in_rise, *d_rise, 0.15 * *d_rise)
        << "input-rise: STA " << sta_in_rise << " vs transient " << *d_rise;
    EXPECT_NEAR(sta_in_fall, *d_fall, 0.15 * *d_fall)
        << "input-fall: STA " << sta_in_fall << " vs transient " << *d_fall;
  }
}

// --- Library holes: structured missing-timing, never silent ----------------

namespace holes {

charlib::Table2D filled_table(const std::vector<double>& slews,
                              const std::vector<double>& loads, double value) {
  charlib::Table2D t(slews, loads);
  for (std::size_t i = 0; i < t.rows(); ++i)
    for (std::size_t j = 0; j < t.cols(); ++j) t.set(i, j, value);
  return t;
}

charlib::ArcTables make_arc(const charlib::CharLibrary& lib,
                            const std::string& pin, bool input_rise,
                            bool output_rise) {
  charlib::ArcTables arc;
  arc.pin = pin;
  arc.input_rise = input_rise;
  arc.output_rise = output_rise;
  arc.delay = filled_table(lib.slew_axis, lib.load_axis, 20e-12);
  arc.out_slew = filled_table(lib.slew_axis, lib.load_axis, 30e-12);
  arc.energy = filled_table(lib.slew_axis, lib.load_axis, 1e-15);
  return arc;
}

}  // namespace holes

TEST(Analyzer, LibraryHolesEmitMissingTimingDiagnostics) {
  // A library that knows INV1 — minus its fall arc — and nothing else:
  // both hole shapes (whole cell, single arc) in one design.
  charlib::CharLibrary lib;
  lib.slew_axis = {10e-12, 80e-12};
  lib.load_axis = {0.2e-15, 4e-15};
  charlib::CellChar inv;
  inv.type = cells::CellType::kInv1;
  inv.area = 1e-13;
  inv.input_cap = {{"A", 0.2e-15}};
  inv.arcs.push_back(holes::make_arc(lib, "A", true, false));
  lib.insert(cells::Implementation::k2D, inv);

  lint::DiagnosticSink sink;
  const Design d = parse_design(
      "design holes\ninput a\ninput b\noutput y\n"
      "gate INV1X1 u1 a n1\ngate NAND2X1 u2 n1 b y\n",
      sink);
  ASSERT_EQ(sink.num_errors(), 0u);

  AnalyzeOptions opts;
  opts.library = &lib;
  const AnalyzeReport report = analyze_design(d, default_timing_model(), opts);

  std::size_t cell_holes = 0, arc_holes = 0;
  for (const Diagnostic& diag : report.findings) {
    if (diag.rule != "missing-timing") continue;
    EXPECT_EQ(diag.severity, Severity::kError);
    if (diag.message.find("no characterized timing") != std::string::npos)
      ++cell_holes;
    if (diag.message.find("pin A has no characterized fall arc") !=
        std::string::npos)
      ++arc_holes;
  }
  EXPECT_EQ(cell_holes, 1u) << lint::render_text(report.findings);
  EXPECT_EQ(arc_holes, 1u) << lint::render_text(report.findings);
  EXPECT_GE(report.errors, 2u);
  // The pass still completes — holes degrade to recorded zero-delay
  // passthroughs, never a throw or a silent synthetic-model fallback.
  ASSERT_TRUE(report.libsta.has_value());
  EXPECT_EQ(report.libsta->missing.size(), 2u);
  ASSERT_TRUE(report.sta.has_value());
}

TEST(Analyzer, ClampedLookupsSurfaceAsExtrapolationInfo) {
  // Full INV1 entry over a deliberately tiny grid: the 20 ps default input
  // slew lies far past the 2 ps slew axis, so every lookup clamps and the
  // analyzer must say so.
  charlib::CharLibrary lib;
  lib.slew_axis = {1e-12, 2e-12};
  lib.load_axis = {0.1e-15, 0.2e-15};
  charlib::CellChar inv;
  inv.type = cells::CellType::kInv1;
  inv.area = 1e-13;
  inv.input_cap = {{"A", 0.2e-15}};
  inv.arcs.push_back(holes::make_arc(lib, "A", true, false));
  inv.arcs.push_back(holes::make_arc(lib, "A", false, true));
  lib.insert(cells::Implementation::k2D, inv);

  lint::DiagnosticSink sink;
  const Design d = parse_design(
      "design clamp\ninput a\noutput y\n"
      "gate INV1X1 u1 a n1\ngate INV1X1 u2 n1 y\n",
      sink);
  ASSERT_EQ(sink.num_errors(), 0u);

  AnalyzeOptions opts;
  opts.library = &lib;
  const AnalyzeReport report = analyze_design(d, default_timing_model(), opts);
  EXPECT_EQ(report.errors, 0u) << lint::render_text(report.findings);
  ASSERT_TRUE(report.libsta.has_value());
  EXPECT_GT(report.libsta->clamped_lookups, 0u);
  std::size_t extrapolation = 0;
  for (const Diagnostic& diag : report.findings) {
    if (diag.rule == "table-extrapolation") {
      EXPECT_EQ(diag.severity, Severity::kInfo);
      ++extrapolation;
    }
  }
  EXPECT_EQ(extrapolation, 1u) << lint::render_text(report.findings);
}

// --- Tier / MIV placement rules -------------------------------------------

TEST(TierRules, CleanPlacedBlockGetsSummaryOnly) {
  const gatelevel::GateNetlist n = gatelevel::ripple_carry_adder(4);
  const Design d = design_from_netlist(n);
  const place::Placer placer((layout::DesignRules()));
  const place::Placement placement =
      placer.place(n, cells::Implementation::kMiv1Channel,
                   place::Mode::kCoupled);
  lint::DiagnosticSink sink;
  const std::size_t errors = analyze_tiers(d, placement, sink);
  EXPECT_EQ(errors, 0u) << sink.render_text();
  EXPECT_EQ(count_rule(sink, "tier-summary"), 1u);
}

TEST(TierRules, CrossTierBudgetTrips) {
  const gatelevel::GateNetlist n = gatelevel::ripple_carry_adder(4);
  const Design d = design_from_netlist(n);
  const place::Placer placer((layout::DesignRules()));
  const place::Placement placement = placer.place(
      n, cells::Implementation::kMiv1Channel, place::Mode::kCoupled);
  TierRuleOptions opts;
  opts.cross_tier_net_budget = 1;  // every gate net crosses -> way over
  lint::DiagnosticSink sink;
  analyze_tiers(d, placement, sink, opts);
  EXPECT_EQ(count_rule(sink, "cross-tier-net-budget"), 1u);
}

TEST(TierRules, MissingAndUnknownInstances) {
  const gatelevel::GateNetlist n = gatelevel::ripple_carry_adder(2);
  const Design d = design_from_netlist(n);
  const place::Placer placer((layout::DesignRules()));
  place::Placement placement =
      placer.place(n, cells::Implementation::k2D, place::Mode::kCoupled);
  ASSERT_FALSE(placement.coupled.cells.empty());
  placement.coupled.cells.back().instance = "u_phantom";
  lint::DiagnosticSink sink;
  const std::size_t errors = analyze_tiers(d, placement, sink);
  EXPECT_EQ(count_rule(sink, "placement-missing-instance"), 1u);
  EXPECT_EQ(count_rule(sink, "placement-unknown-instance"), 1u);
  EXPECT_EQ(errors, 2u);
}

TEST(TierRules, OverlapDetected) {
  const gatelevel::GateNetlist n = gatelevel::ripple_carry_adder(2);
  const Design d = design_from_netlist(n);
  const place::Placer placer((layout::DesignRules()));
  place::Placement placement =
      placer.place(n, cells::Implementation::k2D, place::Mode::kCoupled);
  ASSERT_GE(placement.coupled.cells.size(), 2u);
  // Slam the second cell onto the first.
  placement.coupled.cells[1].x = placement.coupled.cells[0].x;
  placement.coupled.cells[1].y = placement.coupled.cells[0].y;
  lint::DiagnosticSink sink;
  analyze_tiers(d, placement, sink);
  EXPECT_GE(count_rule(sink, "cell-overlap"), 1u);
}

// --- Analyzer orchestration ------------------------------------------------

TEST(Analyzer, CleanBlockReportsStaAndNoErrors) {
  const Design d = design_from_netlist(gatelevel::ripple_carry_adder(4));
  AnalyzeOptions opts;
  const AnalyzeReport report =
      analyze_design(d, default_timing_model(), opts);
  EXPECT_EQ(report.errors, 0u) << lint::render_text(report.findings);
  ASSERT_TRUE(report.sta.has_value());
  EXPECT_GT(report.sta->worst_arrival, 0.0);
  EXPECT_FALSE(report.placement.has_value());
}

TEST(Analyzer, BrokenDesignSkipsStaButStillDiagnoses) {
  lint::DiagnosticSink parse_sink;
  const Design d = parse_design(
      "design dup\ninput a\noutput y\n"
      "gate INV1X1 u1 a y\ngate INV1X1 u2 a y\n",
      parse_sink);
  const AnalyzeReport report = analyze_design(d, default_timing_model());
  EXPECT_FALSE(report.sta.has_value());
  EXPECT_GE(report.errors, 1u);
  std::size_t skipped = 0;
  for (const Diagnostic& diag : report.findings) {
    if (diag.rule == "sta-skipped") ++skipped;
  }
  EXPECT_EQ(skipped, 1u);
}

TEST(Analyzer, ClockGatingEmitsTimingViolations) {
  const Design d = design_from_netlist(gatelevel::ripple_carry_adder(8));
  AnalyzeOptions opts;
  opts.sta.clock_period = 1e-12;  // impossible
  const AnalyzeReport report =
      analyze_design(d, default_timing_model(), opts);
  std::size_t violations = 0;
  for (const Diagnostic& diag : report.findings) {
    if (diag.rule == "timing-violation") {
      EXPECT_EQ(diag.severity, Severity::kError);
      ++violations;
    }
  }
  // Every primary output of the adder (s0..s7, c8, cout_alias) misses a
  // 1 ps clock.
  EXPECT_EQ(violations, 10u);
}

TEST(Analyzer, PlacementPassRunsTierRules) {
  const Design d = design_from_netlist(gatelevel::ripple_carry_adder(4));
  AnalyzeOptions opts;
  opts.impl = cells::Implementation::kMiv2Channel;
  opts.place_mode = place::Mode::kPerTier;
  const AnalyzeReport report =
      analyze_design(d, default_timing_model(), opts);
  ASSERT_TRUE(report.placement.has_value());
  std::size_t summaries = 0;
  for (const Diagnostic& diag : report.findings) {
    if (diag.rule == "tier-summary") ++summaries;
  }
  EXPECT_EQ(summaries, 1u);
}

TEST(Analyzer, DefaultTimingModelCoversEveryCell) {
  const gatelevel::TimingModel m = default_timing_model();
  for (cells::Implementation impl : cells::all_implementations()) {
    EXPECT_GT(m.slope(impl), 0.0);
    for (cells::CellType t : cells::all_cells()) {
      const gatelevel::CellTiming& ct = m.timing(impl, t);
      EXPECT_GT(ct.delay_ref, 0.0);
      EXPECT_GT(ct.input_cap, 0.0);
      EXPECT_GT(ct.slew_ref, 0.0);
    }
  }
  // Fig. 5(a) ordering: 1-channel fastest, 4-channel slowest.
  const auto d = [&](cells::Implementation impl) {
    return m.timing(impl, cells::CellType::kInv1).delay_ref;
  };
  EXPECT_LT(d(cells::Implementation::kMiv1Channel),
            d(cells::Implementation::k2D));
  EXPECT_GT(d(cells::Implementation::kMiv4Channel),
            d(cells::Implementation::k2D));
}

// --- Mutation decks: diagnose or pass, never crash -------------------------

TEST(FuzzDecks, EveryGnlDeckDiagnosesOrPasses) {
  namespace fs = std::filesystem;
  const fs::path corpus(MIVTX_FUZZ_CORPUS_DIR);
  ASSERT_TRUE(fs::exists(corpus));
  std::size_t decks = 0, broken = 0;
  for (const auto& entry : fs::directory_iterator(corpus)) {
    if (entry.path().extension() != ".gnl") continue;
    ++decks;
    std::ifstream file(entry.path());
    ASSERT_TRUE(file.good()) << entry.path();
    std::stringstream text;
    text << file.rdbuf();

    lint::DiagnosticSink sink;
    sink.set_default_file(entry.path().filename().string());
    const Design d = parse_design(text.str(), sink);
    AnalyzeOptions opts;
    opts.place_mode = place::Mode::kCoupled;  // exercise every pass
    const AnalyzeReport report =
        analyze_design(d, default_timing_model(), opts);

    const std::size_t errors = sink.num_errors() + report.errors;
    const bool is_mutant =
        entry.path().filename().string().rfind("gnl_mut_", 0) == 0;
    if (is_mutant) {
      EXPECT_GE(errors, 1u)
          << entry.path() << " should have been diagnosed";
      ++broken;
    } else {
      EXPECT_EQ(errors, 0u)
          << entry.path() << ": " << lint::render_text(report.findings);
    }
  }
  EXPECT_GE(decks, 6u);
  EXPECT_GE(broken, 4u);
}

}  // namespace
}  // namespace mivtx::analyze
