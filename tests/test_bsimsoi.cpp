// Compact model: parameter card I/O, I-V and charge properties, exact
// derivative consistency, and the vds = 0 continuity regression.
#include <gtest/gtest.h>

#include <cmath>

#include "bsimsoi/curves.h"
#include "bsimsoi/model.h"
#include "bsimsoi/params.h"
#include "common/error.h"
#include "common/rng.h"

namespace mivtx::bsimsoi {
namespace {

SoiModelCard nmos_card() {
  SoiModelCard c;
  c.polarity = Polarity::kNmos;
  c.vth0 = 0.35;
  c.l = 24e-9;
  c.w = 192e-9;
  c.u0 = 0.03;
  c.cgsl = 4e-11;
  c.cgdl = 2e-11;  // deliberately asymmetric overlaps
  c.cgso = 6e-11;
  c.cgdo = 3e-11;
  c.k1b = 0.4;
  c.dvtb = 0.25;
  return c;
}

SoiModelCard pmos_card() {
  SoiModelCard c = nmos_card();
  c.polarity = Polarity::kPmos;
  c.vth0 = -0.35;
  c.u0 = 0.012;
  return c;
}

// --- Card I/O ---------------------------------------------------------------

TEST(Params, GetSetRoundTrip) {
  SoiModelCard c;
  c.set("VTH0", 0.42);
  EXPECT_DOUBLE_EQ(c.get("vth0"), 0.42);
  c.set("u0", 0.05);
  EXPECT_DOUBLE_EQ(c.u0, 0.05);
  c.set("K1B", 0.7);
  EXPECT_DOUBLE_EQ(c.k1b, 0.7);
  EXPECT_THROW(c.get("NOPE"), mivtx::Error);
  EXPECT_THROW(c.set("NOPE", 1.0), mivtx::Error);
}

TEST(Params, FlagsViaGetSet) {
  SoiModelCard c;
  c.set("SOIMOD", 2);
  EXPECT_EQ(c.soimod, 2);
  EXPECT_DOUBLE_EQ(c.get("LEVEL"), 70.0);
  c.set("NF", 4);
  EXPECT_EQ(c.nf, 4);
}

TEST(Params, ModelLineRoundTrip) {
  SoiModelCard c = nmos_card();
  c.name = "nch_test";
  c.rdsw = 123.25;
  const std::string line = c.to_model_line();
  const SoiModelCard back = SoiModelCard::from_model_line(line);
  EXPECT_EQ(back.name, "nch_test");
  EXPECT_EQ(back.polarity, Polarity::kNmos);
  for (const std::string& p : SoiModelCard::tunable_names()) {
    EXPECT_NEAR(back.get(p), c.get(p), 1e-9 * std::max(1.0, std::fabs(c.get(p))))
        << p;
  }
}

TEST(Params, ModelLineRejectsJunk) {
  EXPECT_THROW(SoiModelCard::from_model_line("hello"), mivtx::Error);
  EXPECT_THROW(SoiModelCard::from_model_line(".model x diode L=1"), mivtx::Error);
  EXPECT_THROW(SoiModelCard::from_model_line(".model x nmos L"), mivtx::Error);
}

// --- I-V properties ----------------------------------------------------------

TEST(Model, ZeroCurrentAtZeroVds) {
  const SoiModelCard c = nmos_card();
  for (double vg : {0.0, 0.3, 0.6, 1.0}) {
    EXPECT_NEAR(eval(c, vg, 0.0, 0.0).ids, 0.0, 1e-15) << vg;
  }
}

TEST(Model, CurrentIncreasesWithVgAndVd) {
  const SoiModelCard c = nmos_card();
  double prev = -1.0;
  for (double vg = 0.0; vg <= 1.01; vg += 0.05) {
    const double id = drain_current(c, vg, 1.0);
    EXPECT_GT(id, prev) << "vg=" << vg;
    prev = id;
  }
  prev = -1.0;
  for (double vd = 0.0; vd <= 1.01; vd += 0.05) {
    const double id = drain_current(c, 1.0, vd);
    EXPECT_GE(id, prev) << "vd=" << vd;
    prev = id;
  }
}

TEST(Model, SubthresholdIsExponential) {
  const SoiModelCard c = nmos_card();
  // Swing between successive 50 mV steps deep below Vth should be roughly
  // constant and between 60 and 200 mV/dec.
  const double i1 = drain_current(c, 0.05, 1.0);
  const double i2 = drain_current(c, 0.10, 1.0);
  const double i3 = drain_current(c, 0.15, 1.0);
  const double dec12 = 0.05 / std::log10(i2 / i1);
  const double dec23 = 0.05 / std::log10(i3 / i2);
  EXPECT_GT(dec12, 0.055);
  EXPECT_LT(dec12, 0.25);
  EXPECT_NEAR(dec12, dec23, 0.02);
}

TEST(Model, SourceDrainSwapAntisymmetry) {
  // Swapping the drain and source terminals must exactly negate the
  // current (the model is symmetric by construction).
  // Gummel symmetry: exchanging the drain and source node voltages must
  // exactly negate the terminal current.
  const SoiModelCard c = nmos_card();
  for (double vds : {0.05, 0.3, 0.8}) {
    const double fwd = eval(c, 0.8, vds, 0.0).ids;
    const double rev = eval(c, 0.8, 0.0, vds).ids;
    EXPECT_GT(fwd, 0.0);
    EXPECT_NEAR(rev, -fwd, 1e-9 * std::fabs(fwd) + 1e-18) << vds;
  }
}

TEST(Model, PmosMirrorsNmos) {
  const SoiModelCard n = nmos_card();
  const SoiModelCard p = [&] {
    SoiModelCard c = n;
    c.polarity = Polarity::kPmos;
    c.vth0 = -n.vth0;
    return c;
  }();
  for (double vg : {0.4, 0.7, 1.0}) {
    for (double vd : {0.2, 0.6, 1.0}) {
      const ModelOutput mn = eval(n, vg, vd, 0.0);
      const ModelOutput mp = eval(p, -vg, -vd, 0.0);
      EXPECT_NEAR(mp.ids, -mn.ids, 1e-12 + 1e-9 * std::fabs(mn.ids));
      EXPECT_NEAR(mp.qg, -mn.qg, 1e-25 + 1e-9 * std::fabs(mn.qg));
      EXPECT_NEAR(mp.qd, -mn.qd, 1e-25 + 1e-9 * std::fabs(mn.qd));
    }
  }
}

TEST(Model, EffectiveVthTracksDibl) {
  const SoiModelCard c = nmos_card();
  const double v_low = effective_vth(c, 0.05);
  const double v_high = effective_vth(c, 1.0);
  EXPECT_GT(v_low, v_high);  // DIBL lowers the barrier at high drain
  EXPECT_NEAR(v_low - v_high, c.etab * 0.95, 1e-12);
}

TEST(Model, SeriesResistanceReducesCurrent) {
  SoiModelCard lo = nmos_card();
  lo.rdsw = 10.0;
  SoiModelCard hi = nmos_card();
  hi.rdsw = 1000.0;
  EXPECT_GT(drain_current(lo, 1.0, 1.0), drain_current(hi, 1.0, 1.0));
}

// --- Derivative consistency ---------------------------------------------------

struct BiasPointCase {
  double vg, vd, vs;
};

class DerivativeTest : public ::testing::TestWithParam<BiasPointCase> {};

TEST_P(DerivativeTest, MatchesFiniteDifferenceNmos) {
  const SoiModelCard c = nmos_card();
  const auto [vg, vd, vs] = GetParam();
  const ModelOutput m = eval(c, vg, vd, vs);
  const double h = 1e-6;
  const double pert[3][3] = {{h, 0, 0}, {0, h, 0}, {0, 0, h}};
  for (int k = 0; k < 3; ++k) {
    const ModelOutput p =
        eval(c, vg + pert[k][0], vd + pert[k][1], vs + pert[k][2]);
    const ModelOutput mth =
        eval(c, vg - pert[k][0], vd - pert[k][1], vs - pert[k][2]);
    const double d_ids = (p.ids - mth.ids) / (2 * h);
    const double d_qg = (p.qg - mth.qg) / (2 * h);
    const double d_qd = (p.qd - mth.qd) / (2 * h);
    const double d_qs = (p.qs - mth.qs) / (2 * h);
    EXPECT_NEAR(m.dids[k], d_ids, 1e-5 * std::max(1e-6, std::fabs(d_ids)))
        << "ids deriv " << k;
    EXPECT_NEAR(m.dqg[k], d_qg, 2e-4 * std::max(1e-17, std::fabs(d_qg)))
        << "qg deriv " << k;
    EXPECT_NEAR(m.dqd[k], d_qd, 2e-4 * std::max(1e-17, std::fabs(d_qd)))
        << "qd deriv " << k;
    EXPECT_NEAR(m.dqs[k], d_qs, 2e-4 * std::max(1e-17, std::fabs(d_qs)))
        << "qs deriv " << k;
  }
}

INSTANTIATE_TEST_SUITE_P(
    BiasGrid, DerivativeTest,
    ::testing::Values(BiasPointCase{0.0, 1.0, 0.0},  // off
                      BiasPointCase{0.35, 0.05, 0.0},  // near threshold, linear
                      BiasPointCase{0.8, 0.05, 0.0},   // on, triode
                      BiasPointCase{0.8, 0.8, 0.0},    // on, saturation
                      BiasPointCase{1.0, 1.0, 0.0},
                      BiasPointCase{1.0, 0.32, 0.3},   // lifted source
                      BiasPointCase{0.6, -0.4, 0.0},   // reverse mode (swap)
                      BiasPointCase{0.5, 0.001, 0.0}));  // near vds = 0

TEST(Model, ChargePartitionKinkAtVdsZeroIsSmall) {
  // The Ward-Dutton 40/60 partition (like BSIM's) is only approximately C1
  // at vds = 0: the one-sided charge derivatives differ by ~20 % for this
  // card.  Pin the kink so it cannot silently grow - a much larger jump
  // would destabilize transient Newton iterations around output crossover.
  const SoiModelCard c = nmos_card();
  const double vg = 1.0, vb = 0.3;  // both S/D at 0.3 V
  const double h = 1e-5;
  const ModelOutput plus = eval(c, vg, vb + h, vb);
  const ModelOutput zero = eval(c, vg, vb, vb);
  const ModelOutput minus = eval(c, vg, vb - h, vb);
  const double right = (plus.qg - zero.qg) / h;
  const double left = (zero.qg - minus.qg) / h;
  EXPECT_LT(std::fabs(right - left),
            0.30 * std::max(std::fabs(right), std::fabs(left)));
}

// --- Charge continuity across the internal drain/source swap ----------------

TEST(Model, ChargesContinuousAcrossVdsZeroWithAsymmetricOverlaps) {
  // Regression: asymmetric CGSO/CGDO once made terminal charges jump at
  // vds = 0 because the swap exchanged the overlap assignments, which in
  // turn made transient integration reject steps forever.
  const SoiModelCard c = nmos_card();
  const double vg = 0.7;
  const double eps = 1e-7;
  const ModelOutput lo = eval(c, vg, -eps, 0.0);
  const ModelOutput hi = eval(c, vg, +eps, 0.0);
  EXPECT_NEAR(lo.qg, hi.qg, 1e-22);
  EXPECT_NEAR(lo.qd, hi.qd, 1e-22);
  EXPECT_NEAR(lo.qs, hi.qs, 1e-22);
  EXPECT_NEAR(lo.ids, hi.ids, 1e-9);
}

TEST(Model, ChargeNeutralitySums) {
  // Terminal charges must sum to ~zero (3-terminal device, all induced
  // charge is mirrored on the gate).
  const SoiModelCard c = nmos_card();
  for (double vg : {0.0, 0.5, 1.0}) {
    for (double vd : {0.0, 0.5, 1.0}) {
      const ModelOutput m = eval(c, vg, vd, 0.0);
      EXPECT_NEAR(m.qg + m.qd + m.qs, 0.0,
                  1e-9 * (std::fabs(m.qg) + 1e-20))
          << vg << " " << vd;
    }
  }
}

TEST(Model, GateCapacitancePositiveAndSaturates) {
  const SoiModelCard c = nmos_card();
  double prev = 0.0;
  for (double vg = 0.0; vg <= 1.0; vg += 0.1) {
    const double cgg = gate_capacitance(c, vg, 0.0);
    EXPECT_GT(cgg, 0.0);
    prev = cgg;
  }
  // In strong inversion Cgg should exceed the intrinsic oxide capacitance.
  const double cox_area =
      3.9 * 8.8541878128e-12 / c.tox * c.w * c.l;
  EXPECT_GT(prev, cox_area);
}

TEST(Model, BackChannelBranchAddsCapacitance) {
  SoiModelCard with = nmos_card();
  SoiModelCard without = nmos_card();
  without.k1b = 0.0;
  // Above the back-channel threshold the K1B branch adds gate capacitance.
  const double cg_with = gate_capacitance(with, 1.0, 0.0);
  const double cg_without = gate_capacitance(without, 1.0, 0.0);
  EXPECT_GT(cg_with, cg_without);
  // Far below threshold both agree.
  EXPECT_NEAR(gate_capacitance(with, 0.0, 0.0),
              gate_capacitance(without, 0.0, 0.0), 1e-19);
}

// --- Curve helpers -------------------------------------------------------------

TEST(Curves, IdVgMonotoneAndPositive) {
  const SoiModelCard c = nmos_card();
  const Curve curve = id_vg(c, 1.0, {0.0, 0.25, 0.5, 0.75, 1.0});
  ASSERT_EQ(curve.size(), 5u);
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_GT(curve[i].y, curve[i - 1].y);
  }
}

TEST(Curves, PmosUsesMagnitudes) {
  const SoiModelCard p = pmos_card();
  const Curve curve = id_vg(p, 1.0, {0.0, 0.5, 1.0});
  EXPECT_GT(curve[2].y, curve[1].y);
  EXPECT_GT(curve[2].y, 0.0);  // reported as |Id|
}

TEST(Curves, CggVgMatchesGateCapacitance) {
  const SoiModelCard c = nmos_card();
  const Curve curve = cgg_vg(c, 0.0, {0.3, 0.8});
  EXPECT_NEAR(curve[0].y, gate_capacitance(c, 0.3, 0.0), 1e-20);
  EXPECT_NEAR(curve[1].y, gate_capacitance(c, 0.8, 0.0), 1e-20);
}

TEST(Model, TemperatureScalingIsIdentityAtTnom) {
  SoiModelCard c = nmos_card();
  c.temp = c.tnom;
  SoiModelCard ref = nmos_card();
  for (double vg : {0.3, 0.7, 1.0}) {
    EXPECT_DOUBLE_EQ(drain_current(c, vg, 1.0), drain_current(ref, vg, 1.0));
  }
}

TEST(Model, HotSiliconIsSlowerOnButLeaksMore) {
  SoiModelCard cold = nmos_card();
  cold.temp = -40.0;
  SoiModelCard hot = nmos_card();
  hot.temp = 125.0;
  // Strong inversion: mobility loss dominates -> less on-current when hot.
  EXPECT_GT(drain_current(cold, 1.0, 1.0), drain_current(hot, 1.0, 1.0));
  // Subthreshold: Vth drop + kT slope -> more leakage when hot.
  EXPECT_LT(drain_current(cold, 0.0, 1.0), drain_current(hot, 0.0, 1.0));
}

TEST(Model, TemperatureParamsRoundTripThroughCard) {
  SoiModelCard c = nmos_card();
  c.temp = 85.0;
  c.ute = -1.2;
  c.kt1 = -0.09;
  const SoiModelCard back = SoiModelCard::from_model_line(c.to_model_line());
  EXPECT_DOUBLE_EQ(back.temp, 85.0);
  EXPECT_DOUBLE_EQ(back.ute, -1.2);
  EXPECT_DOUBLE_EQ(back.kt1, -0.09);
}

TEST(Model, RandomCardsStayFinite) {
  // Fuzz the tunable parameter space: the model must never emit NaN/inf
  // inside the optimizer's search box.
  Rng rng(77);
  for (int trial = 0; trial < 50; ++trial) {
    SoiModelCard c = nmos_card();
    c.vth0 = rng.uniform(0.05, 0.7);
    c.u0 = rng.uniform(2e-3, 0.3);
    c.ua = rng.uniform(0.0, 3e-8);
    c.ub = rng.uniform(0.0, 1e-15);
    c.ud = rng.uniform(0.0, 20.0);
    c.ucs = rng.uniform(0.03, 8.0);
    c.vsat = rng.uniform(1e4, 1e6);
    c.cdsc = rng.uniform(0.0, 3e-2);
    c.cdscd = rng.uniform(0.0, 3e-2);
    c.etab = rng.uniform(0.0, 0.25);
    c.rdsw = rng.uniform(0.0, 3e3);
    c.pclm = rng.uniform(0.3, 8.0);
    c.pvag = rng.uniform(0.0, 8.0);
    c.k1b = rng.uniform(0.0, 2.0);
    c.dvtb = rng.uniform(0.0, 0.8);
    c.ckappa = rng.uniform(0.02, 3.0);
    c.moin = rng.uniform(1.0, 40.0);
    for (double vg : {0.0, 0.5, 1.0}) {
      for (double vd : {0.0, 0.5, 1.0}) {
        const ModelOutput m = eval(c, vg, vd, 0.0);
        EXPECT_TRUE(std::isfinite(m.ids));
        EXPECT_TRUE(std::isfinite(m.qg));
        EXPECT_TRUE(std::isfinite(m.qd));
        EXPECT_TRUE(std::isfinite(m.qs));
        for (int k = 0; k < 3; ++k) {
          EXPECT_TRUE(std::isfinite(m.dids[k]));
          EXPECT_TRUE(std::isfinite(m.dqg[k]));
        }
      }
    }
  }
}

}  // namespace
}  // namespace mivtx::bsimsoi
