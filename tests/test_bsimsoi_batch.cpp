// Batched SoA device evaluation (bsimsoi/batch.h) vs the scalar reference
// model: both kernel builds must track bsimsoi::eval to <= 1e-12 relative
// on every output (current, charges, and all nine derivative entries)
// across bias space, polarities, temperatures, and the back-interface
// branch — including the edge shapes the lane packing introduces:
// remainder blocks (count % kLaneWidth != 0), a single-device batch,
// mixed-polarity blocks, and cutoff/denormal operating points.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "bsimsoi/batch.h"
#include "bsimsoi/model.h"
#include "bsimsoi/simd.h"

namespace mivtx::bsimsoi {
namespace {

// rel 1e-12 plus per-row absolute floors.  Current rows: at vds == 0 the
// true current/gm is exactly 0 and both paths return pure cancellation
// residue (~1e-12 of the 1e-4 physical scale), which the AVX2 and libm
// transcendentals round differently — a 1e-18 floor forgives that residue
// while staying 14 orders below the on-state scale.  Charge rows never
// cancel that way (their magnitudes are ~1e-16), so they keep a 1e-26
// floor that only covers the denormal regime.
constexpr double kRelTol = 1e-12;
constexpr double kAbsFloorCurrent = 1e-18;
constexpr double kAbsFloorCharge = 1e-26;

void expect_output_close(const ModelOutput& got, const ModelOutput& want,
                         const std::string& ctx) {
  auto check = [&](double g, double w, double floor_, const std::string& what) {
    const double scale = std::max(std::fabs(g), std::fabs(w));
    EXPECT_LE(std::fabs(g - w), kRelTol * scale + floor_)
        << ctx << " " << what << ": got " << g << " want " << w;
  };
  check(got.ids, want.ids, kAbsFloorCurrent, "ids");
  check(got.qg, want.qg, kAbsFloorCharge, "qg");
  check(got.qd, want.qd, kAbsFloorCharge, "qd");
  check(got.qs, want.qs, kAbsFloorCharge, "qs");
  for (int t = 0; t < 3; ++t) {
    const std::string sfx = std::string(1, "gds"[t]);
    check(got.dids[t], want.dids[t], kAbsFloorCurrent, "dids/" + sfx);
    check(got.dqg[t], want.dqg[t], kAbsFloorCharge, "dqg/" + sfx);
    check(got.dqd[t], want.dqd[t], kAbsFloorCharge, "dqd/" + sfx);
    check(got.dqs[t], want.dqs[t], kAbsFloorCharge, "dqs/" + sfx);
  }
}

std::vector<SoiModelCard> test_cards() {
  std::vector<SoiModelCard> cards;
  SoiModelCard nmos;
  cards.push_back(nmos);

  SoiModelCard pmos;
  pmos.polarity = Polarity::kPmos;
  pmos.vth0 = -0.32;
  pmos.u0 = 0.012;
  cards.push_back(pmos);

  SoiModelCard miv = nmos;  // MIV stem: back-interface branch enabled
  miv.k1b = 0.25;
  miv.dvtb = 0.2;
  miv.nf = 2;
  miv.w = 2 * nmos.w;
  cards.push_back(miv);

  SoiModelCard hot = nmos;  // temperature scaling away from TNOM
  hot.temp = 85.0;
  hot.ud = 0.1;
  hot.ucs = 0.8;
  cards.push_back(hot);

  SoiModelCard cap = pmos;  // bias-dependent overlaps + fringe
  cap.cgsl = 4e-11;
  cap.cgdl = 6e-11;
  cap.cf = 2e-11;
  cap.k1b = 0.1;
  cards.push_back(cap);

  return cards;
}

// Bias grid covering subthreshold, moderate and strong inversion, both
// vds signs (terminal-swap path), vds == 0 exactly, and a lifted source.
const double kVg[] = {-1.2, -0.4, 0.0, 0.12, 0.35, 0.7, 1.2};
const double kVd[] = {-1.2, -0.3, 0.0, 1e-9, 0.05, 0.6, 1.2};
const double kVs[] = {0.0, 0.3, -0.5};

void run_grid_vs_scalar(SimdLevel level) {
  const std::vector<SoiModelCard> cards = test_cards();
  std::vector<const SoiModelCard*> ptrs;
  for (const auto& c : cards) ptrs.push_back(&c);

  DeviceBatch batch;
  batch.bind(ptrs, level);
  ASSERT_EQ(batch.instances(), cards.size());

  for (double vg : kVg) {
    for (double vd : kVd) {
      for (double vs : kVs) {
        batch.clear_active();
        for (std::size_t i = 0; i < cards.size(); ++i) {
          batch.stage(i, vg, vd, vs);
        }
        batch.eval();
        for (std::size_t i = 0; i < cards.size(); ++i) {
          const ModelOutput want = eval(cards[i], vg, vd, vs);
          expect_output_close(
              batch.output(i), want,
              "card " + std::to_string(i) + " vg=" + std::to_string(vg) +
                  " vd=" + std::to_string(vd) + " vs=" + std::to_string(vs));
        }
      }
    }
  }
}

TEST(BsimsoiBatch, PortableKernelMatchesScalarModel) {
  run_grid_vs_scalar(SimdLevel::kScalarLane);
}

TEST(BsimsoiBatch, Avx2KernelMatchesScalarModel) {
  if (!avx2_kernel_compiled() || !cpu_has_avx2()) {
    GTEST_SKIP() << "AVX2 kernel not available";
  }
  run_grid_vs_scalar(SimdLevel::kAvx2);
}

// count % kLaneWidth != 0: the tail block replicates its last instance;
// every real instance must still get its own result.  Also covers the
// single-MOSFET circuit (count == 1).
TEST(BsimsoiBatch, RemainderLanes) {
  for (SimdLevel level : {SimdLevel::kScalarLane, SimdLevel::kAvx2}) {
    if (level == SimdLevel::kAvx2 &&
        (!avx2_kernel_compiled() || !cpu_has_avx2())) {
      continue;
    }
    for (std::size_t count : {std::size_t{1}, std::size_t{2}, std::size_t{5},
                              std::size_t{7}}) {
      std::vector<SoiModelCard> cards;
      for (std::size_t i = 0; i < count; ++i) {
        SoiModelCard c;
        c.vth0 = 0.3 + 0.01 * static_cast<double>(i);  // distinct per lane
        c.w = (1.0 + static_cast<double>(i)) * 96e-9;
        cards.push_back(c);
      }
      std::vector<const SoiModelCard*> ptrs;
      for (const auto& c : cards) ptrs.push_back(&c);

      DeviceBatch batch;
      batch.bind(ptrs, level);
      batch.clear_active();
      for (std::size_t i = 0; i < count; ++i) {
        batch.stage(i, 0.8, 0.05 * static_cast<double>(i + 1), 0.0);
      }
      const std::size_t blocks = batch.eval();
      EXPECT_EQ(blocks, (count + kLaneWidth - 1) / kLaneWidth);
      for (std::size_t i = 0; i < count; ++i) {
        const ModelOutput want =
            eval(cards[i], 0.8, 0.05 * static_cast<double>(i + 1), 0.0);
        expect_output_close(batch.output(i), want,
                            "count " + std::to_string(count) + " dev " +
                                std::to_string(i) + " level " +
                                simd_level_name(level));
      }
    }
  }
}

// nmos and pmos instances packed into the same kernel block: the polarity
// sign and terminal-swap masks must stay per-lane.
TEST(BsimsoiBatch, MixedPolarityBlock) {
  std::vector<SoiModelCard> cards;
  for (int i = 0; i < 4; ++i) {
    SoiModelCard c;
    if (i % 2 == 1) {
      c.polarity = Polarity::kPmos;
      c.vth0 = -0.32;
    }
    cards.push_back(c);
  }
  std::vector<const SoiModelCard*> ptrs;
  for (const auto& c : cards) ptrs.push_back(&c);

  for (SimdLevel level : {SimdLevel::kScalarLane, SimdLevel::kAvx2}) {
    if (level == SimdLevel::kAvx2 &&
        (!avx2_kernel_compiled() || !cpu_has_avx2())) {
      continue;
    }
    DeviceBatch batch;
    batch.bind(ptrs, level);
    // Inverter-style biases: nmos lanes forward, pmos lanes mirrored —
    // adjacent lanes take opposite swap branches.
    const double vdd = 1.2;
    batch.clear_active();
    batch.stage(0, 0.9, 0.3, 0.0);
    batch.stage(1, 0.9, 0.3, vdd);
    batch.stage(2, 0.2, 1.1, 0.0);
    batch.stage(3, 0.2, 1.1, vdd);
    batch.eval();
    const double biases[4][3] = {
        {0.9, 0.3, 0.0}, {0.9, 0.3, vdd}, {0.2, 1.1, 0.0}, {0.2, 1.1, vdd}};
    for (int i = 0; i < 4; ++i) {
      const ModelOutput want =
          eval(cards[i], biases[i][0], biases[i][1], biases[i][2]);
      expect_output_close(batch.output(i), want,
                          "mixed dev " + std::to_string(i) + " level " +
                              simd_level_name(level));
    }
  }
}

// Deep cutoff drives softplus into its exp tail where intermediate
// products go denormal (and to exact zero past exp(-708)); both kernels
// must agree with the scalar branches there.
TEST(BsimsoiBatch, CutoffAndDenormalBias) {
  const std::vector<SoiModelCard> cards = test_cards();
  std::vector<const SoiModelCard*> ptrs;
  for (const auto& c : cards) ptrs.push_back(&c);

  const double biases[][3] = {
      {0.0, 1.2, 0.0},    // off, full rail
      {-1.2, 1.2, 0.0},   // deep accumulation: exp tail underflows
      {-3.0, 0.6, 0.0},   // past the exp(-708) flush for small n*vt
      {0.35, 0.0, 0.0},   // exactly at vds = 0 (swap boundary)
      {0.35, 1e-12, 0.0}, // just above it
      {1.2, -1.2, 0.0},   // swapped, strong inversion
  };
  for (SimdLevel level : {SimdLevel::kScalarLane, SimdLevel::kAvx2}) {
    if (level == SimdLevel::kAvx2 &&
        (!avx2_kernel_compiled() || !cpu_has_avx2())) {
      continue;
    }
    DeviceBatch batch;
    batch.bind(ptrs, level);
    for (const auto& b : biases) {
      batch.clear_active();
      for (std::size_t i = 0; i < cards.size(); ++i) {
        batch.stage(i, b[0], b[1], b[2]);
      }
      batch.eval();
      for (std::size_t i = 0; i < cards.size(); ++i) {
        const ModelOutput want = eval(cards[i], b[0], b[1], b[2]);
        expect_output_close(batch.output(i), want,
                            "cutoff card " + std::to_string(i) + " vg=" +
                                std::to_string(b[0]) + " level " +
                                simd_level_name(level));
      }
    }
  }
}

// The staging protocol: only staged instances are recomputed; the rest
// keep their previous outputs (this is what the bypass cache relies on).
TEST(BsimsoiBatch, PartialStagingKeepsPreviousOutputs) {
  const std::vector<SoiModelCard> cards = test_cards();
  std::vector<const SoiModelCard*> ptrs;
  for (const auto& c : cards) ptrs.push_back(&c);

  DeviceBatch batch;
  batch.bind(ptrs, best_simd_level());
  batch.clear_active();
  for (std::size_t i = 0; i < cards.size(); ++i) batch.stage(i, 0.7, 0.4, 0.0);
  batch.eval();

  batch.clear_active();
  batch.stage(2, 1.1, 0.9, 0.0);  // only the MIV device moves
  EXPECT_EQ(batch.active_count(), 1u);
  batch.eval();

  for (std::size_t i = 0; i < cards.size(); ++i) {
    const ModelOutput want = (i == 2) ? eval(cards[i], 1.1, 0.9, 0.0)
                                      : eval(cards[i], 0.7, 0.4, 0.0);
    expect_output_close(batch.output(i), want,
                        "staged dev " + std::to_string(i));
  }
}

}  // namespace
}  // namespace mivtx::bsimsoi
