// Standard-cell library: truth tables, switch-level topology verification,
// and netlist generation for every (cell x implementation) pair.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "cells/celltypes.h"
#include "cells/netgen.h"
#include "cells/topology.h"
#include "common/error.h"
#include "core/reference_cards.h"
#include "spice/dcop.h"
#include "spice/parser.h"

namespace mivtx::cells {
namespace {

ModelSet test_models() {
  const auto& lib = core::reference_model_library();
  ModelSet m;
  m.nmos = lib.card(core::Variant::kTraditional, core::Polarity::kNmos);
  m.pmos = lib.card(core::Variant::kTraditional, core::Polarity::kPmos);
  return m;
}

TEST(CellTypes, FourteenCells) {
  EXPECT_EQ(all_cells().size(), 14u);
  std::set<std::string> names;
  for (CellType t : all_cells()) names.insert(cell_name(t));
  EXPECT_EQ(names.size(), 14u);
  EXPECT_TRUE(names.count("AND2X1"));
  EXPECT_TRUE(names.count("XNOR2X1"));
  EXPECT_TRUE(names.count("MUX2X1"));
}

TEST(CellTypes, InputNames) {
  EXPECT_EQ(cell_input_names(CellType::kInv1),
            (std::vector<std::string>{"A"}));
  EXPECT_EQ(cell_input_names(CellType::kMux2),
            (std::vector<std::string>{"A", "B", "S"}));
  EXPECT_EQ(cell_input_names(CellType::kNand3).size(), 3u);
}

TEST(CellTypes, LogicSpotChecks) {
  EXPECT_TRUE(cell_logic(CellType::kXor2, {true, false}));
  EXPECT_FALSE(cell_logic(CellType::kXor2, {true, true}));
  EXPECT_TRUE(cell_logic(CellType::kMux2, {false, true, true}));   // S=1 -> B
  EXPECT_FALSE(cell_logic(CellType::kMux2, {false, true, false})); // S=0 -> A
  EXPECT_FALSE(cell_logic(CellType::kAoi2, {true, true, false}));
  EXPECT_TRUE(cell_logic(CellType::kOai2, {false, false, true}));
  EXPECT_THROW(cell_logic(CellType::kInv1, {true, false}), mivtx::Error);
}

class TopologyTruthTest : public ::testing::TestWithParam<CellType> {};

TEST_P(TopologyTruthTest, SwitchLevelMatchesTruthTable) {
  const CellType type = GetParam();
  const CellTopology& topo = cell_topology(type);
  const std::size_t n = cell_num_inputs(type);
  for (std::size_t mask = 0; mask < (std::size_t{1} << n); ++mask) {
    std::vector<bool> in(n);
    for (std::size_t i = 0; i < n; ++i) in[i] = (mask >> i) & 1u;
    EXPECT_EQ(topo.evaluate(in), cell_logic(type, in))
        << cell_name(type) << " mask=" << mask;
  }
}

TEST_P(TopologyTruthTest, ComplementaryDeviceCounts) {
  const CellTopology& topo = cell_topology(GetParam());
  EXPECT_EQ(topo.num_nmos(), topo.num_pmos());
  EXPECT_GE(topo.num_nmos(), cell_num_inputs(GetParam()));
}

INSTANTIATE_TEST_SUITE_P(
    AllCells, TopologyTruthTest, ::testing::ValuesIn(all_cells()),
    [](const ::testing::TestParamInfo<CellType>& info) {
      return cell_name(info.param);
    });

TEST(CellTypes, FunctionStringsMatchLogic) {
  // Evaluate each Liberty function string against the truth table via a
  // tiny recursive-descent evaluator ( !, *, +, ^, parentheses ).
  struct Eval {
    const std::string& s;
    const std::map<char, bool>& env;
    std::size_t pos = 0;
    bool parse_or() {
      bool v = parse_xor();
      while (pos < s.size() && s[pos] == '+') {
        ++pos;
        const bool r = parse_xor();
        v = v || r;
      }
      return v;
    }
    bool parse_xor() {
      bool v = parse_and();
      while (pos < s.size() && s[pos] == '^') {
        ++pos;
        const bool r = parse_and();
        v = v != r;
      }
      return v;
    }
    bool parse_and() {
      bool v = parse_unary();
      while (pos < s.size() && s[pos] == '*') {
        ++pos;
        const bool r = parse_unary();
        v = v && r;
      }
      return v;
    }
    bool parse_unary() {
      if (s[pos] == '!') {
        ++pos;
        return !parse_unary();
      }
      if (s[pos] == '(') {
        ++pos;
        const bool v = parse_or();
        ++pos;  // ')'
        return v;
      }
      return env.at(s[pos++]);
    }
  };
  for (CellType t : all_cells()) {
    const std::string fn = cell_function_string(t);
    const auto pins = cell_input_names(t);
    const std::size_t n = pins.size();
    for (std::size_t mask = 0; mask < (std::size_t{1} << n); ++mask) {
      std::vector<bool> in(n);
      std::map<char, bool> env;
      for (std::size_t i = 0; i < n; ++i) {
        in[i] = (mask >> i) & 1u;
        env[pins[i][0]] = in[i];
      }
      Eval ev{fn, env};
      EXPECT_EQ(ev.parse_or(), cell_logic(t, in))
          << cell_name(t) << " fn=" << fn << " mask=" << mask;
    }
  }
}

TEST(Topology, SignalNetsExcludeRails) {
  const CellTopology& topo = cell_topology(CellType::kNand2);
  for (const std::string& net : topo.signal_nets()) {
    EXPECT_NE(net, "vdd");
    EXPECT_NE(net, "gnd");
  }
}

struct BuildCase {
  CellType type;
  Implementation impl;
};

class NetgenTest
    : public ::testing::TestWithParam<std::tuple<CellType, Implementation>> {};

TEST_P(NetgenTest, BuildsAndSolvesDc) {
  const auto [type, impl] = GetParam();
  const CellNetlist cell =
      build_cell(type, impl, test_models(), ParasiticSpec{}, 1.0);
  EXPECT_EQ(cell.input_sources.size(), cell_num_inputs(type));
  EXPECT_GT(cell.mivs.total, 0);
  // Every generated cell must have a converging DC operating point with
  // all inputs low.
  const spice::DcResult r = spice::dc_operating_point(cell.circuit);
  EXPECT_TRUE(r.converged) << cell_name(type) << "/" << impl_name(impl);
  // Output node exists and sits at a rail (inputs all 0 -> defined logic).
  const spice::NodeId out = cell.circuit.find_node(cell.output_node);
  const double vout = spice::solution_voltage(cell.circuit, r.x, out);
  std::vector<bool> zeros(cell_num_inputs(type), false);
  const double expect = cell_logic(type, zeros) ? 1.0 : 0.0;
  EXPECT_NEAR(vout, expect, 0.05) << cell_name(type) << "/" << impl_name(impl);
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, NetgenTest,
    ::testing::Combine(::testing::ValuesIn(all_cells()),
                       ::testing::ValuesIn(all_implementations())),
    [](const ::testing::TestParamInfo<std::tuple<CellType, Implementation>>&
           info) {
      std::string name = cell_name(std::get<0>(info.param));
      name += "_";
      name += impl_name(std::get<1>(info.param));
      for (char& c : name)
        if (c == '-') c = '_';
      return name;
    });

TEST(Netgen, MivAccountingInverter2D) {
  const CellNetlist cell = build_cell(CellType::kInv1, Implementation::k2D,
                                      test_models(), ParasiticSpec{}, 1.0);
  // Input A: external gate MIV; output Y: internal S/D MIV.
  EXPECT_EQ(cell.mivs.gate_external, 1);
  EXPECT_EQ(cell.mivs.internal, 1);
  EXPECT_EQ(cell.mivs.total, 2);
}

TEST(Netgen, MivTransistorImplUsesPerGateVias) {
  const CellNetlist cell =
      build_cell(CellType::kNand2, Implementation::kMiv2Channel,
                 test_models(), ParasiticSpec{}, 1.0);
  // NAND2: inputs A and B each feed one n-gate (1 via each) plus the
  // output's internal S/D via: 3 total, no external keep-out vias.
  EXPECT_EQ(cell.mivs.gate_external, 0);
  EXPECT_EQ(cell.mivs.total, 3);
}

TEST(Netgen, FourChannelAddsSdResistors) {
  const CellNetlist plain = build_cell(
      CellType::kInv1, Implementation::kMiv2Channel, test_models(),
      ParasiticSpec{}, 1.0);
  const CellNetlist four = build_cell(CellType::kInv1,
                                      Implementation::kMiv4Channel,
                                      test_models(), ParasiticSpec{}, 1.0);
  auto count_r = [](const CellNetlist& c) {
    int n = 0;
    for (const auto& e : c.circuit.elements())
      n += e.kind == spice::ElementKind::kResistor;
    return n;
  };
  // One extra resistor per n-type S/D pin (the INV has one nmos -> +2).
  EXPECT_EQ(count_r(four), count_r(plain) + 2);
}

TEST(Netgen, StrayViaCapOnlyIn2D) {
  auto count_c = [](const CellNetlist& c) {
    int n = 0;
    for (const auto& e : c.circuit.elements())
      n += e.kind == spice::ElementKind::kCapacitor;
    return n;
  };
  const CellNetlist two_d = build_cell(CellType::kNand2, Implementation::k2D,
                                       test_models(), ParasiticSpec{}, 1.0);
  const CellNetlist miv =
      build_cell(CellType::kNand2, Implementation::kMiv1Channel,
                 test_models(), ParasiticSpec{}, 1.0);
  // 2D: load cap + one stray cap per external gate via (A, B).
  EXPECT_EQ(count_c(two_d), 3);
  EXPECT_EQ(count_c(miv), 1);
}

TEST(Netgen, NetlistTextRoundTripsThroughParser) {
  const CellNetlist cell = build_cell(CellType::kAoi2, Implementation::k2D,
                                      test_models(), ParasiticSpec{}, 1.0);
  const std::string text = to_netlist_text(cell);
  const spice::ParsedNetlist parsed = spice::parse_netlist(text);
  EXPECT_EQ(parsed.circuit.elements().size(), cell.circuit.elements().size());
  EXPECT_EQ(parsed.circuit.num_nodes(), cell.circuit.num_nodes());
  // The reparsed circuit solves to the same DC output.
  const spice::DcResult a = spice::dc_operating_point(cell.circuit);
  const spice::DcResult b = spice::dc_operating_point(parsed.circuit);
  ASSERT_TRUE(a.converged);
  ASSERT_TRUE(b.converged);
  const double va = spice::solution_voltage(
      cell.circuit, a.x, cell.circuit.find_node(cell.output_node));
  const double vb = spice::solution_voltage(
      parsed.circuit, b.x, parsed.circuit.find_node(cell.output_node));
  EXPECT_NEAR(va, vb, 1e-6);
}

TEST(Netgen, ImplMetadata) {
  EXPECT_EQ(all_implementations().size(), 4u);
  EXPECT_STREQ(impl_name(Implementation::k2D), "2D");
  EXPECT_STREQ(impl_name(Implementation::kMiv4Channel), "4-ch");
}

}  // namespace
}  // namespace mivtx::cells
