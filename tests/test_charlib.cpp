// Tests for mivtx::charlib: Table2D bilinear lookup semantics, the .mlib
// byte-stable text format and its rejection paths, and the NLDM
// characterizer (physical sanity + artifact-cache round trip on the mini
// grid).  The randomized bilinear/round-trip invariants live in the verify
// property engine; these are the directed unit cases.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "charlib/characterize.h"
#include "charlib/library.h"
#include "common/error.h"
#include "core/reference_cards.h"
#include "runtime/artifact_cache.h"
#include "runtime/exec_policy.h"
#include "runtime/metrics.h"
#include "runtime/thread_pool.h"
#include "temp_dir.h"

namespace mivtx::charlib {
namespace {

Table2D filled(const std::vector<double>& slews,
               const std::vector<double>& loads, double value) {
  Table2D t(slews, loads);
  for (std::size_t i = 0; i < t.rows(); ++i)
    for (std::size_t j = 0; j < t.cols(); ++j) t.set(i, j, value);
  return t;
}

// --- Table2D ---------------------------------------------------------------

TEST(Table2D, ValidatesAxes) {
  EXPECT_THROW(Table2D({}, {1e-15}), Error);
  EXPECT_THROW(Table2D({1e-12}, {}), Error);
  EXPECT_THROW(Table2D({1e-12, 1e-12}, {1e-15}), Error);  // not strictly up
  EXPECT_THROW(Table2D({2e-12, 1e-12}, {1e-15}), Error);
  EXPECT_NO_THROW(Table2D({1e-12}, {1e-15}));  // 1x1 is a legal table
}

TEST(Table2D, BilinearReproducesBilinearFunctionsExactly) {
  // f(s, l) = a + b*s + c*l + d*s*l is in the bilinear family, so the
  // interpolant must reproduce it at any in-hull point, not just nodes.
  const std::vector<double> slews{4e-12, 20e-12, 100e-12};
  const std::vector<double> loads{0.1e-15, 1e-15, 8e-15};
  const auto f = [](double s, double l) {
    return 5e-12 + 0.8 * s + 2e3 * l + 4e14 * s * l;
  };
  Table2D t(slews, loads);
  for (std::size_t i = 0; i < t.rows(); ++i)
    for (std::size_t j = 0; j < t.cols(); ++j)
      t.set(i, j, f(slews[i], loads[j]));

  for (const double s : {4e-12, 7e-12, 20e-12, 55e-12, 100e-12}) {
    for (const double l : {0.1e-15, 0.4e-15, 1e-15, 5e-15, 8e-15}) {
      const LookupResult r = t.lookup(s, l);
      EXPECT_FALSE(r.clamped());
      EXPECT_NEAR(r.value, f(s, l), 1e-12 * std::abs(f(s, l)));
    }
  }
}

TEST(Table2D, ClampsAndFlagsPerAxis) {
  const std::vector<double> slews{10e-12, 80e-12};
  const std::vector<double> loads{0.2e-15, 4e-15};
  Table2D t(slews, loads);
  t.set(0, 0, 1.0);
  t.set(0, 1, 2.0);
  t.set(1, 0, 3.0);
  t.set(1, 1, 4.0);

  const LookupResult below_slew = t.lookup(1e-12, 1e-15);
  EXPECT_TRUE(below_slew.clamped_slew);
  EXPECT_FALSE(below_slew.clamped_load);
  EXPECT_DOUBLE_EQ(below_slew.value, t.lookup(10e-12, 1e-15).value);

  const LookupResult beyond_load = t.lookup(40e-12, 1e-12);
  EXPECT_FALSE(beyond_load.clamped_slew);
  EXPECT_TRUE(beyond_load.clamped_load);
  EXPECT_DOUBLE_EQ(beyond_load.value, t.lookup(40e-12, 4e-15).value);

  const LookupResult corner = t.lookup(1e-9, 1e-12);
  EXPECT_TRUE(corner.clamped_slew);
  EXPECT_TRUE(corner.clamped_load);
  EXPECT_DOUBLE_EQ(corner.value, t.at(1, 1));

  EXPECT_FALSE(t.lookup(10e-12, 0.2e-15).clamped());  // hull edge is inside
}

// --- CellChar / CharLibrary ------------------------------------------------

CellChar make_inv_entry(const CharLibrary& lib) {
  CellChar inv;
  inv.type = cells::CellType::kInv1;
  inv.area = 1.5e-13;
  inv.input_cap = {{"A", 0.25e-15}};
  for (const bool input_rise : {true, false}) {
    ArcTables arc;
    arc.pin = "A";
    arc.input_rise = input_rise;
    arc.output_rise = !input_rise;
    arc.delay = filled(lib.slew_axis, lib.load_axis, 20e-12);
    arc.out_slew = filled(lib.slew_axis, lib.load_axis, 30e-12);
    arc.energy = filled(lib.slew_axis, lib.load_axis, 1e-15);
    inv.arcs.push_back(arc);
  }
  return inv;
}

TEST(CharLibraryUnit, FindArcAndPinCap) {
  CharLibrary lib;
  lib.slew_axis = {10e-12, 80e-12};
  lib.load_axis = {0.2e-15, 4e-15};
  lib.insert(cells::Implementation::k2D, make_inv_entry(lib));

  const CellChar* inv = lib.find(cells::Implementation::k2D,
                                 cells::CellType::kInv1);
  ASSERT_NE(inv, nullptr);
  EXPECT_NE(inv->find_arc("A", true), nullptr);
  EXPECT_NE(inv->find_arc("A", false), nullptr);
  EXPECT_EQ(inv->find_arc("B", true), nullptr);  // unknown pin = hole
  EXPECT_DOUBLE_EQ(inv->pin_cap("A"), 0.25e-15);
  EXPECT_DOUBLE_EQ(inv->pin_cap("B"), 0.0);

  EXPECT_EQ(lib.find(cells::Implementation::kMiv1Channel,
                     cells::CellType::kInv1),
            nullptr);
  EXPECT_EQ(lib.find(cells::Implementation::k2D, cells::CellType::kNand2),
            nullptr);
  EXPECT_EQ(lib.num_cells(), 1u);
}

TEST(CharLibraryUnit, InsertRejectsGridMismatch) {
  CharLibrary lib;
  lib.slew_axis = {10e-12, 80e-12};
  lib.load_axis = {0.2e-15, 4e-15};

  CharLibrary other;
  other.slew_axis = {5e-12, 40e-12};  // different grid
  other.load_axis = lib.load_axis;
  EXPECT_THROW(lib.insert(cells::Implementation::k2D, make_inv_entry(other)),
               Error);
  EXPECT_TRUE(lib.empty());
  EXPECT_NO_THROW(lib.insert(cells::Implementation::k2D,
                             make_inv_entry(lib)));
}

TEST(CharLibraryUnit, TextRoundTripIsByteStable) {
  CharLibrary lib;
  lib.slew_axis = {10e-12, 80e-12};
  lib.load_axis = {0.2e-15, 4e-15};
  lib.insert(cells::Implementation::k2D, make_inv_entry(lib));
  lib.insert(cells::Implementation::kMiv4Channel, make_inv_entry(lib));

  const std::string text = lib.to_text();
  const CharLibrary back = CharLibrary::from_text(text);
  EXPECT_TRUE(back == lib);
  EXPECT_EQ(back.to_text(), text);
}

TEST(CharLibraryUnit, ParserRejectsMalformedInput) {
  CharLibrary lib;
  lib.slew_axis = {10e-12, 80e-12};
  lib.load_axis = {0.2e-15, 4e-15};
  lib.insert(cells::Implementation::k2D, make_inv_entry(lib));
  const std::string good = lib.to_text();

  const std::vector<std::pair<const char*, std::string>> bad = {
      {"empty", ""},
      {"bad magic", "mivtx-sprinkles 1\nend\n"},
      {"future version", "mivtx-charlib 99\nend\n"},
      {"unknown cell",
       "mivtx-charlib 1\nslews 1 1e-11\nloads 1 2e-16\nimpl 2d\n"
       "cell WARPCOREX1\nendcell\nend\n"},
      {"unknown impl tag",
       "mivtx-charlib 1\nslews 1 1e-11\nloads 1 2e-16\nimpl 9ch\nend\n"},
      {"axis count mismatch",
       "mivtx-charlib 1\nslews 3 1e-11 8e-11\nloads 1 2e-16\nend\n"},
      {"non-ascending axis",
       "mivtx-charlib 1\nslews 2 8e-11 1e-11\nloads 1 2e-16\nend\n"},
      {"non-finite value", good.substr(0, good.find("2e-11")) + "nan" +
                               good.substr(good.find("2e-11") + 5)},
      {"truncated", good.substr(0, good.size() / 2)},
      {"trailing garbage", good + "cell INV1X1\n"},
  };
  for (const auto& [name, text] : bad) {
    SCOPED_TRACE(name);
    EXPECT_THROW(CharLibrary::from_text(text), Error);
  }
  // A duplicate arc of an otherwise well-formed cell must be rejected too.
  const std::string arc_line = "arc A rise fall\n";
  const std::size_t pos = good.find(arc_line);
  ASSERT_NE(pos, std::string::npos);
  const std::size_t arc_end = good.find("arc A fall", pos);
  ASSERT_NE(arc_end, std::string::npos);
  const std::string dup = good.substr(0, arc_end) +
                          good.substr(pos, arc_end - pos) +
                          good.substr(arc_end);
  EXPECT_THROW(CharLibrary::from_text(dup), Error);
}

TEST(CharLibraryUnit, ImplTagsRoundTrip) {
  for (const cells::Implementation impl : cells::all_implementations()) {
    EXPECT_EQ(impl_from_tag(impl_tag(impl)), impl);
  }
  EXPECT_THROW(impl_from_tag("3ch"), Error);
  EXPECT_THROW(impl_from_tag(""), Error);
}

// --- Characterizer ---------------------------------------------------------

TEST(Characterize, GridPresetsAreWellFormed) {
  for (const CharGrid& g : {default_char_grid(), mini_char_grid()}) {
    // Table2D's constructor enforces non-empty strictly-ascending axes.
    EXPECT_NO_THROW(Table2D(g.slews, g.loads));
  }
  EXPECT_GT(default_char_grid().slews.size(),
            mini_char_grid().slews.size());
}

TEST(Characterize, Inv1TablesArePhysical) {
  runtime::ThreadPool pool;
  CharOptions opts;
  opts.grid = mini_char_grid();
  const Characterizer characterizer(core::reference_model_library(), opts, {},
                                    runtime::ExecPolicy{&pool, nullptr});
  const CellChar inv = characterizer.characterize_cell(
      cells::CellType::kInv1, cells::Implementation::k2D);

  EXPECT_EQ(inv.type, cells::CellType::kInv1);
  EXPECT_GT(inv.area, 0.0);
  ASSERT_EQ(inv.input_cap.size(), 1u);
  EXPECT_GT(inv.input_cap[0].second, 0.0);
  ASSERT_EQ(inv.arcs.size(), 2u);  // one pin, both input edges
  for (const ArcTables& arc : inv.arcs) {
    EXPECT_EQ(arc.pin, "A");
    // An inverter: the output edge opposes the input edge.
    EXPECT_EQ(arc.output_rise, !arc.input_rise);
    for (std::size_t i = 0; i < arc.delay.rows(); ++i) {
      for (std::size_t j = 0; j < arc.delay.cols(); ++j) {
        EXPECT_GT(arc.delay.at(i, j), 0.0);
        EXPECT_GT(arc.out_slew.at(i, j), 0.0);
      }
      // Heavier load, slower cell: delay is monotone along the load axis.
      EXPECT_LT(arc.delay.at(i, 0), arc.delay.at(i, arc.delay.cols() - 1));
    }
  }
}

TEST(Characterize, ArtifactCacheRoundTripsEntries) {
  const testutil::ScopedTempDir tmp("charlib_cache");
  runtime::ArtifactCache::Options copts;
  copts.disk_dir = tmp.path().string();
  runtime::ArtifactCache cache(copts);
  runtime::ThreadPool pool;
  CharOptions opts;
  opts.grid = mini_char_grid();
  const Characterizer characterizer(core::reference_model_library(), opts, {},
                                    runtime::ExecPolicy{&pool, &cache});

  const double computed =
      runtime::Metrics::global().counter_total("charlib.computed");
  const double hits =
      runtime::Metrics::global().counter_total("charlib.cache_hit");
  const CellChar cold = characterizer.characterize_cell(
      cells::CellType::kInv1, cells::Implementation::kMiv1Channel);
  const CellChar warm = characterizer.characterize_cell(
      cells::CellType::kInv1, cells::Implementation::kMiv1Channel);
  EXPECT_TRUE(warm == cold);
  EXPECT_DOUBLE_EQ(
      runtime::Metrics::global().counter_total("charlib.computed"),
      computed + 1.0);
  EXPECT_DOUBLE_EQ(
      runtime::Metrics::global().counter_total("charlib.cache_hit"),
      hits + 1.0);

  // A different grid must key differently — no false sharing.
  CharOptions other = opts;
  other.grid.loads.back() *= 2.0;
  const Characterizer characterizer2(core::reference_model_library(), other,
                                     {}, runtime::ExecPolicy{&pool, &cache});
  EXPECT_NE(characterizer
                .cell_key(cells::CellType::kInv1,
                          cells::Implementation::kMiv1Channel)
                .digest,
            characterizer2
                .cell_key(cells::CellType::kInv1,
                          cells::Implementation::kMiv1Channel)
                .digest);
}

}  // namespace
}  // namespace mivtx::charlib
