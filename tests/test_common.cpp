// Unit tests for src/common: strings, table formatting, RNG, error macros.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/error.h"
#include "common/rng.h"
#include "common/strings.h"
#include "common/table.h"
#include "common/units.h"

namespace mivtx {
namespace {

TEST(Strings, ToLowerUpper) {
  EXPECT_EQ(to_lower("AbC123"), "abc123");
  EXPECT_EQ(to_upper("AbC123"), "ABC123");
  EXPECT_EQ(to_lower(""), "");
}

TEST(Strings, Trim) {
  EXPECT_EQ(trim("  hi  "), "hi");
  EXPECT_EQ(trim("hi"), "hi");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim("\t a b \n"), "a b");
}

TEST(Strings, StartsWithCi) {
  EXPECT_TRUE(starts_with_ci(".MODEL nch", ".model"));
  EXPECT_TRUE(starts_with_ci("pulse(0 1)", "PULSE"));
  EXPECT_FALSE(starts_with_ci("pul", "pulse"));
  EXPECT_TRUE(equals_ci("NMOS", "nmos"));
  EXPECT_FALSE(equals_ci("NMOS", "pmos"));
  EXPECT_FALSE(equals_ci("NMOSX", "nmos"));
}

TEST(Strings, Split) {
  const auto t = split("a  b\tc", " \t");
  ASSERT_EQ(t.size(), 3u);
  EXPECT_EQ(t[0], "a");
  EXPECT_EQ(t[2], "c");
  EXPECT_TRUE(split("", " ").empty());
  EXPECT_TRUE(split("   ", " ").empty());
}

struct SpiceNumberCase {
  const char* text;
  double expected;
};

class SpiceNumberTest : public ::testing::TestWithParam<SpiceNumberCase> {};

TEST_P(SpiceNumberTest, Parses) {
  const auto& c = GetParam();
  EXPECT_DOUBLE_EQ(parse_spice_number(c.text), c.expected) << c.text;
}

INSTANTIATE_TEST_SUITE_P(
    Suffixes, SpiceNumberTest,
    ::testing::Values(SpiceNumberCase{"1.5", 1.5},
                      SpiceNumberCase{"1k", 1e3},
                      SpiceNumberCase{"2.5meg", 2.5e6},
                      SpiceNumberCase{"10u", 10e-6},
                      SpiceNumberCase{"3n", 3e-9},
                      SpiceNumberCase{"1.5p", 1.5e-12},
                      SpiceNumberCase{"7f", 7e-15},
                      SpiceNumberCase{"2a", 2e-18},
                      SpiceNumberCase{"1e-9", 1e-9},
                      SpiceNumberCase{"-4m", -4e-3},
                      SpiceNumberCase{"1.0v", 1.0},
                      SpiceNumberCase{"5T", 5e12},
                      SpiceNumberCase{"2g", 2e9},
                      SpiceNumberCase{"  42  ", 42.0}));

TEST(Strings, ParseSpiceNumberRejectsJunk) {
  EXPECT_THROW(parse_spice_number("abc"), Error);
  EXPECT_THROW(parse_spice_number(""), Error);
  EXPECT_THROW(parse_spice_number("   "), Error);
}

TEST(Strings, Format) {
  EXPECT_EQ(format("%d-%s", 42, "x"), "42-x");
  EXPECT_EQ(format("%.2f", 1.2345), "1.23");
}

TEST(Strings, EngFormat) {
  EXPECT_EQ(eng_format(3.5e-10, "s", 1), "350.0 ps");
  EXPECT_EQ(eng_format(1e3, "Hz", 0), "1 kHz");
  EXPECT_EQ(eng_format(2.5e-6, "W", 1), "2.5 uW");
  // Zero stays plain.
  EXPECT_NE(eng_format(0.0, "A").find("0"), std::string::npos);
}

TEST(Units, Helpers) {
  EXPECT_DOUBLE_EQ(nm(24), 24e-9);
  EXPECT_DOUBLE_EQ(fF(1), 1e-15);
  EXPECT_DOUBLE_EQ(per_cm3(1e19), 1e25);
  EXPECT_NEAR(thermal_voltage(300.0), 0.02585, 1e-4);
}

TEST(Error, ExpectMacroThrowsWithContext) {
  try {
    MIVTX_EXPECT(1 == 2, "custom context");
    FAIL() << "should have thrown";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
    EXPECT_NE(what.find("custom context"), std::string::npos);
  }
}

TEST(Error, FailMacroThrows) {
  EXPECT_THROW(MIVTX_FAIL("boom"), Error);
}

TEST(Table, FormatsAlignedGrid) {
  TextTable t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_separator();
  t.add_row({"b", "22"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("22"), std::string::npos);
  // 4 rules + header + 2 rows = 7 lines.
  EXPECT_EQ(std::count(s.begin(), s.end(), '\n'), 7);
}

TEST(Table, RejectsBadArity) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), Error);
}

TEST(Table, PercentDelta) {
  EXPECT_EQ(percent_delta(100.0, 82.0), "-18.0%");
  EXPECT_EQ(percent_delta(100.0, 103.1), "+3.1%");
  EXPECT_EQ(percent_delta(0.0, 1.0), "n/a");
}

TEST(Rng, Deterministic) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.next_u64() == b.next_u64();
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-2.0, 3.0);
    EXPECT_GE(u, -2.0);
    EXPECT_LT(u, 3.0);
  }
}

TEST(Rng, UniformIndexCoversRange) {
  Rng rng(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 400; ++i) seen.insert(rng.uniform_index(7));
  EXPECT_EQ(seen.size(), 7u);
  EXPECT_THROW(rng.uniform_index(0), Error);
}

TEST(Rng, NormalMoments) {
  Rng rng(11);
  double sum = 0.0, sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(Rng, Bernoulli) {
  Rng rng(13);
  int hits = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.25);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.25, 0.02);
}

}  // namespace
}  // namespace mivtx
