// Top-level flows: model library, reference cards, PPA engine, and a
// fast end-to-end TCAD -> extraction integration run.
#include <gtest/gtest.h>

#include <cmath>

#include "bsimsoi/model.h"
#include "common/error.h"
#include "core/flow.h"
#include "core/ppa.h"
#include "core/liberty.h"
#include "core/variability.h"
#include "core/reference_cards.h"
#include "core/technology.h"

namespace mivtx::core {
namespace {

TEST(Technology, DeviceKeys) {
  EXPECT_EQ(device_key(Variant::kTraditional, Polarity::kNmos), "nmos_trad");
  EXPECT_EQ(device_key(Variant::kMiv4Channel, Polarity::kPmos), "pmos_4ch");
  EXPECT_EQ(all_variants().size(), 4u);
}

TEST(Technology, SpecsInheritProcess) {
  ProcessParams p;
  p.l_gate = 30e-9;
  p.w_src = 100e-9;
  const tcad::DeviceSpec spec =
      device_spec(p, Variant::kMiv2Channel, Polarity::kPmos);
  EXPECT_DOUBLE_EQ(spec.l_gate, 30e-9);
  EXPECT_DOUBLE_EQ(spec.w_total, 100e-9);
  EXPECT_EQ(spec.polarity, tcad::Polarity::kPmos);
  EXPECT_GT(spec.miv_coverage, 0.0);

  const bsimsoi::SoiModelCard card =
      initial_card(p, Variant::kMiv2Channel, Polarity::kPmos);
  EXPECT_EQ(card.nf, 2);
  EXPECT_LT(card.vth0, 0.0);
  EXPECT_DOUBLE_EQ(card.l, 30e-9);
}

TEST(ModelLibrary, PutGetRoundTrip) {
  ModelLibrary lib;
  bsimsoi::SoiModelCard c;
  c.vth0 = 0.123;
  lib.put(Variant::kTraditional, Polarity::kNmos, c);
  EXPECT_TRUE(lib.has(Variant::kTraditional, Polarity::kNmos));
  EXPECT_FALSE(lib.has(Variant::kMiv1Channel, Polarity::kNmos));
  EXPECT_DOUBLE_EQ(
      lib.card(Variant::kTraditional, Polarity::kNmos).vth0, 0.123);
  EXPECT_THROW(lib.card(Variant::kMiv1Channel, Polarity::kPmos),
               mivtx::Error);
}

TEST(ModelLibrary, TextRoundTrip) {
  ModelLibrary lib;
  bsimsoi::SoiModelCard c;
  c.vth0 = 0.31;
  c.u0 = 0.042;
  lib.put(Variant::kMiv1Channel, Polarity::kNmos, c);
  c.polarity = bsimsoi::Polarity::kPmos;
  c.vth0 = -0.29;
  lib.put(Variant::kMiv1Channel, Polarity::kPmos, c);
  const ModelLibrary back = ModelLibrary::from_text(lib.to_text());
  EXPECT_EQ(back.size(), 2u);
  EXPECT_NEAR(back.card(Variant::kMiv1Channel, Polarity::kNmos).u0, 0.042,
              1e-12);
  EXPECT_NEAR(back.card(Variant::kMiv1Channel, Polarity::kPmos).vth0, -0.29,
              1e-9);
}

TEST(ReferenceCards, AllEightPresentAndHealthy) {
  const ModelLibrary& lib = reference_model_library();
  EXPECT_EQ(lib.size(), 8u);
  for (Polarity pol : {Polarity::kNmos, Polarity::kPmos}) {
    for (Variant v : all_variants()) {
      ASSERT_TRUE(lib.has(v, pol)) << device_key(v, pol);
      const auto& card = lib.card(v, pol);
      EXPECT_EQ(card.level, 70);
      // Each card drives a healthy on-current at |Vgs|=|Vds|=1 V.
      const double s = pol == Polarity::kNmos ? 1.0 : -1.0;
      const double ion =
          std::fabs(bsimsoi::eval(card, s * 1.0, s * 1.0, 0.0).ids);
      EXPECT_GT(ion, 1e-5) << device_key(v, pol);
      EXPECT_LT(ion, 1e-3) << device_key(v, pol);
    }
  }
}

TEST(ReferenceCards, MivVariantsStrongerExceptFourChannel) {
  const ModelLibrary& lib = reference_model_library();
  auto ieff = [&](Variant v) {
    const auto& c = lib.card(v, Polarity::kNmos);
    return 0.5 * (std::fabs(bsimsoi::eval(c, 0.5, 1.0, 0.0).ids) +
                  std::fabs(bsimsoi::eval(c, 1.0, 0.5, 0.0).ids));
  };
  const double trad = ieff(Variant::kTraditional);
  EXPECT_GT(ieff(Variant::kMiv1Channel), trad);
  EXPECT_GT(ieff(Variant::kMiv2Channel), trad);
  EXPECT_LT(ieff(Variant::kMiv4Channel), trad);
}

TEST(PpaEngine, SensitizationFindsTogglingAssignments) {
  for (cells::CellType type : cells::all_cells()) {
    const std::size_t n = cells::cell_num_inputs(type);
    for (std::size_t pin = 0; pin < n; ++pin) {
      const auto side = PpaEngine::sensitize(type, pin);
      ASSERT_TRUE(side.has_value()) << cells::cell_name(type) << " pin " << pin;
      std::vector<bool> in = *side;
      in[pin] = false;
      const bool f0 = cells::cell_logic(type, in);
      in[pin] = true;
      const bool f1 = cells::cell_logic(type, in);
      EXPECT_NE(f0, f1) << cells::cell_name(type) << " pin " << pin;
    }
  }
}

TEST(PpaEngine, ModelSetUsesTraditionalPmos) {
  PpaEngine engine(reference_model_library());
  const cells::ModelSet set =
      engine.model_set(cells::Implementation::kMiv2Channel);
  EXPECT_EQ(set.nmos.name, "nmos_2ch");
  EXPECT_EQ(set.pmos.name, "pmos_trad");
}

TEST(PpaEngine, InverterMeasurementPlausible) {
  PpaEngine engine(reference_model_library());
  const CellPpa ppa =
      engine.measure(cells::CellType::kInv1, cells::Implementation::k2D);
  ASSERT_TRUE(ppa.ok);
  EXPECT_GT(ppa.delay, 1e-12);
  EXPECT_LT(ppa.delay, 1e-10);
  EXPECT_GT(ppa.power, 1e-8);
  EXPECT_LT(ppa.power, 1e-4);
  EXPECT_GT(ppa.area, 0.0);
  EXPECT_NEAR(ppa.pdp, ppa.delay * ppa.power, 1e-25);
  // One pin, two edges.
  EXPECT_EQ(ppa.arcs.size(), 2u);
}

TEST(PpaEngine, TwoChannelInverterFasterThan2D) {
  PpaEngine engine(reference_model_library());
  const CellPpa two_d =
      engine.measure(cells::CellType::kInv1, cells::Implementation::k2D);
  const CellPpa two_ch = engine.measure(cells::CellType::kInv1,
                                        cells::Implementation::kMiv2Channel);
  ASSERT_TRUE(two_d.ok);
  ASSERT_TRUE(two_ch.ok);
  EXPECT_LT(two_ch.delay, two_d.delay);
  EXPECT_LT(two_ch.area, two_d.area);
}

TEST(Summarize, AveragesPerImplementation) {
  std::vector<CellPpa> all;
  for (int i = 0; i < 3; ++i) {
    CellPpa c;
    c.impl = cells::Implementation::k2D;
    c.ok = true;
    c.delay = 1.0 + i;
    c.power = 2.0;
    c.area = 4.0;
    c.pdp = c.delay * c.power;
    all.push_back(c);
  }
  const auto summaries = summarize(all);
  ASSERT_EQ(summaries.size(), 4u);
  EXPECT_DOUBLE_EQ(summaries[0].mean_delay, 2.0);
  EXPECT_DOUBLE_EQ(summaries[0].mean_power, 2.0);
  // Implementations with no data report zeros.
  EXPECT_DOUBLE_EQ(summaries[1].mean_delay, 0.0);
}

TEST(Variability, PerturbCardShiftsMagnitudes) {
  bsimsoi::SoiModelCard n;
  n.vth0 = 0.35;
  n.u0 = 0.03;
  const bsimsoi::SoiModelCard up = perturb_card(n, +0.02, 1.1);
  EXPECT_NEAR(up.vth0, 0.37, 1e-12);
  EXPECT_NEAR(up.u0, 0.033, 1e-12);
  bsimsoi::SoiModelCard p = n;
  p.polarity = bsimsoi::Polarity::kPmos;
  p.vth0 = -0.35;
  const bsimsoi::SoiModelCard pd = perturb_card(p, +0.02, 1.0);
  EXPECT_NEAR(pd.vth0, -0.37, 1e-12);  // magnitude shift keeps the sign
}

TEST(Variability, SmallRunProducesSaneStatistics) {
  core::VariationSpec spec;
  spec.samples = 5;
  const VariabilityStats s =
      run_variability(reference_model_library(), cells::CellType::kInv1,
                      cells::Implementation::k2D, spec);
  EXPECT_EQ(s.samples, 5u);
  EXPECT_GT(s.mean_delay, 1e-12);
  EXPECT_GT(s.sigma_delay, 0.0);
  EXPECT_GE(s.worst_delay, s.mean_delay);
  EXPECT_GT(s.mean_power, 0.0);
  // Deterministic under the same seed.
  const VariabilityStats again =
      run_variability(reference_model_library(), cells::CellType::kInv1,
                      cells::Implementation::k2D, spec);
  EXPECT_DOUBLE_EQ(s.mean_delay, again.mean_delay);
  EXPECT_DOUBLE_EQ(s.sigma_delay, again.sigma_delay);
}

TEST(Variability, LanePackedEngineMatchesPerSample) {
  // Same seed, same counter-based RNG splits: both engines simulate
  // identical sampled circuits, differing only in time-step scheduling
  // (the lane-packed engine locksteps all samples on a shared grid), so
  // the statistics must agree to within the solver's LTE budget.
  core::VariationSpec spec;
  spec.samples = 6;
  const VariabilityStats per_sample =
      run_variability(reference_model_library(), cells::CellType::kNand2,
                      cells::Implementation::kMiv2Channel, spec);
  spec.engine = VariabilityEngine::kLanePacked;
  const VariabilityStats packed =
      run_variability(reference_model_library(), cells::CellType::kNand2,
                      cells::Implementation::kMiv2Channel, spec);

  EXPECT_EQ(packed.samples, per_sample.samples);
  // Every pin probe actually ran the lockstep engine (2 input pins).
  EXPECT_EQ(packed.lockstep_groups, 2u);
  EXPECT_EQ(per_sample.lockstep_groups, 0u);
  EXPECT_NEAR(packed.mean_delay, per_sample.mean_delay,
              5e-3 * per_sample.mean_delay);
  EXPECT_NEAR(packed.worst_delay, per_sample.worst_delay,
              5e-3 * per_sample.worst_delay);
  EXPECT_NEAR(packed.mean_power, per_sample.mean_power,
              5e-3 * std::fabs(per_sample.mean_power));
  // The spread is a difference of nearby delays: give it more head room.
  EXPECT_NEAR(packed.sigma_delay, per_sample.sigma_delay,
              0.1 * per_sample.sigma_delay);
  // Deterministic under the same seed.
  const VariabilityStats again =
      run_variability(reference_model_library(), cells::CellType::kNand2,
                      cells::Implementation::kMiv2Channel, spec);
  EXPECT_DOUBLE_EQ(packed.mean_delay, again.mean_delay);
  EXPECT_DOUBLE_EQ(packed.sigma_delay, again.sigma_delay);
}

TEST(Liberty, ExportIsStructurallySound) {
  // Build a cheap synthetic timing model (no transient runs needed).
  gatelevel::TimingModel timing;
  timing.c_ref = 1e-15;
  for (cells::Implementation impl : cells::all_implementations()) {
    timing.load_slope[impl] = 5e3;  // 5 ps / fF
    for (cells::CellType t : cells::all_cells()) {
      timing.cells[impl][t] = gatelevel::CellTiming{20e-12, 0.4e-15};
    }
  }
  const std::string lib =
      export_liberty(timing, cells::Implementation::kMiv2Channel);
  // Braces balance.
  long depth = 0;
  for (char c : lib) {
    if (c == '{') ++depth;
    if (c == '}') --depth;
    EXPECT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
  // All 14 cells and their functions are present.
  for (cells::CellType t : cells::all_cells()) {
    EXPECT_NE(lib.find(std::string("cell (") + cells::cell_name(t) + ")"),
              std::string::npos)
        << cells::cell_name(t);
  }
  EXPECT_NE(lib.find("function : \"!(A*B)\""), std::string::npos);
  EXPECT_NE(lib.find("library (mivtx_2_ch)"), std::string::npos);
  EXPECT_NE(lib.find("capacitance : 0.4000"), std::string::npos);
}

// End-to-end integration on a coarse grid: TCAD characterization of one
// device plus extraction completes and fits within Table III-like error.
TEST(FlowIntegration, SingleDeviceCharacterizeAndExtract) {
  ProcessParams proc;
  extract::SweepGrid grid;
  grid.n_vg = 9;
  grid.n_vd = 9;
  grid.n_cv = 7;
  grid.idvd_vgs = {0.6, 1.0};
  const extract::CharacteristicSet data =
      characterize_device(proc, Variant::kTraditional, Polarity::kNmos, grid);
  EXPECT_EQ(data.idvg_low.size(), 9u);
  EXPECT_EQ(data.idvd.size(), 2u);
  // Ion/Ioff sanity straight from TCAD.
  EXPECT_GT(data.idvg_high.back().y, 1e-5);
  EXPECT_LT(data.idvg_high.front().y, 1e-8);

  extract::ExtractionOptions opts;
  opts.nm.max_evaluations = 2000;
  const extract::ExtractionReport rep =
      extract::extract_card(data, initial_card(proc, Variant::kTraditional,
                                               Polarity::kNmos),
                            opts);
  EXPECT_LT(rep.errors.idvg, 0.12);
  EXPECT_LT(rep.errors.idvd, 0.12);
  EXPECT_LT(rep.errors.cv, 0.12);
}

}  // namespace
}  // namespace mivtx::core
