// Forward-mode dual numbers: every operation's derivative is checked
// against central finite differences over a parameter sweep.
#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "common/dual.h"

namespace mivtx {
namespace {

using D1 = Dual<1>;

double fd(const std::function<double(double)>& f, double x, double h = 1e-6) {
  return (f(x + h) - f(x - h)) / (2.0 * h);
}

struct UnaryCase {
  const char* name;
  std::function<D1(const D1&)> dual_fn;
  std::function<double(double)> plain_fn;
  double x;
};

class DualUnaryTest : public ::testing::TestWithParam<UnaryCase> {};

TEST_P(DualUnaryTest, MatchesFiniteDifference) {
  const auto& c = GetParam();
  const D1 x = D1::variable(c.x, 0);
  const D1 y = c.dual_fn(x);
  EXPECT_NEAR(y.v, c.plain_fn(c.x), 1e-12) << c.name;
  const double dref = fd(c.plain_fn, c.x);
  EXPECT_NEAR(y.d[0], dref, 1e-5 * std::max(1.0, std::fabs(dref))) << c.name;
}

INSTANTIATE_TEST_SUITE_P(
    Ops, DualUnaryTest,
    ::testing::Values(
        UnaryCase{"sqrt", [](const D1& x) { return sqrt(x); },
                  [](double x) { return std::sqrt(x); }, 2.5},
        UnaryCase{"exp", [](const D1& x) { return exp(x); },
                  [](double x) { return std::exp(x); }, 0.7},
        UnaryCase{"log", [](const D1& x) { return log(x); },
                  [](double x) { return std::log(x); }, 3.0},
        UnaryCase{"log1p", [](const D1& x) { return log1p(x); },
                  [](double x) { return std::log1p(x); }, 0.4},
        UnaryCase{"tanh", [](const D1& x) { return tanh(x); },
                  [](double x) { return std::tanh(x); }, -0.8},
        UnaryCase{"pow17", [](const D1& x) { return pow(x, 1.7); },
                  [](double x) { return std::pow(x, 1.7); }, 1.9},
        UnaryCase{"neg", [](const D1& x) { return -x; },
                  [](double x) { return -x; }, 0.3},
        UnaryCase{"recip", [](const D1& x) { return D1(1.0) / x; },
                  [](double x) { return 1.0 / x; }, 0.9}),
    [](const ::testing::TestParamInfo<UnaryCase>& info) {
      return info.param.name;
    });

TEST(Dual, Arithmetic) {
  const D1 x = D1::variable(3.0, 0);
  const D1 y = x * x + D1(2.0) * x - D1(5.0);
  EXPECT_DOUBLE_EQ(y.v, 10.0);
  EXPECT_DOUBLE_EQ(y.d[0], 8.0);  // 2x + 2

  const D1 q = (x + D1(1.0)) / (x - D1(1.0));
  EXPECT_DOUBLE_EQ(q.v, 2.0);
  // d/dx [(x+1)/(x-1)] = -2/(x-1)^2 = -0.5
  EXPECT_DOUBLE_EQ(q.d[0], -0.5);
}

TEST(Dual, TwoVariables) {
  using D2 = Dual<2>;
  const D2 x = D2::variable(2.0, 0);
  const D2 y = D2::variable(5.0, 1);
  const D2 f = x * y + sqrt(y);
  EXPECT_DOUBLE_EQ(f.v, 10.0 + std::sqrt(5.0));
  EXPECT_DOUBLE_EQ(f.d[0], 5.0);
  EXPECT_NEAR(f.d[1], 2.0 + 0.5 / std::sqrt(5.0), 1e-12);
}

class SoftplusTest : public ::testing::TestWithParam<double> {};

TEST_P(SoftplusTest, ValueAndDerivative) {
  const double xv = GetParam();
  const double k = 0.05;
  const D1 x = D1::variable(xv, 0);
  const D1 y = softplus(x, k);
  // Reference softplus.
  auto ref = [k](double t) {
    const double z = t / k;
    if (z > 40.0) return t;
    if (z < -40.0) return k * std::exp(z);
    return k * std::log1p(std::exp(z));
  };
  EXPECT_NEAR(y.v, ref(xv), 1e-12);
  EXPECT_NEAR(y.d[0], fd(ref, xv, 1e-7), 1e-4);
  // Positivity and asymptotics.
  EXPECT_GT(y.v, 0.0);
  if (xv > 10 * k) {
    EXPECT_NEAR(y.v, xv, 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, SoftplusTest,
                         ::testing::Values(-5.0, -0.5, -0.05, 0.0, 0.05, 0.5,
                                           5.0));

TEST(Dual, SmoothRelu) {
  const double eps = 0.01;
  for (double xv : {-1.0, -0.1, 0.0, 0.1, 1.0}) {
    const D1 x = D1::variable(xv, 0);
    const D1 y = smooth_relu(x, eps);
    EXPECT_GT(y.v, 0.0);
    if (xv > 10 * eps) {
      EXPECT_NEAR(y.v, xv, 1e-3 * xv);
    }
    if (xv < -10 * eps) {
      EXPECT_LT(y.v, 1e-2);
    }
    // Derivative bounded in [0, 1].
    EXPECT_GE(y.d[0], 0.0);
    EXPECT_LE(y.d[0], 1.0 + 1e-12);
  }
}

TEST(Dual, ChainThroughComposite) {
  // f(x) = exp(sqrt(x) * log(x)) at x = 4
  const D1 x = D1::variable(4.0, 0);
  const D1 f = exp(sqrt(x) * log(x));
  auto ref = [](double t) { return std::exp(std::sqrt(t) * std::log(t)); };
  EXPECT_NEAR(f.v, ref(4.0), 1e-10);
  EXPECT_NEAR(f.d[0], fd(ref, 4.0), 1e-4 * std::fabs(f.d[0]));
}

}  // namespace
}  // namespace mivtx
