// Extraction: optimizers, error metrics, and the staged pipeline on
// synthetic data generated from a known card (self-consistency).
#include <gtest/gtest.h>

#include <cmath>

#include "bsimsoi/curves.h"
#include "common/error.h"
#include "extract/errors.h"
#include "extract/optimizer.h"
#include "extract/pipeline.h"

namespace mivtx::extract {
namespace {

TEST(ParamBoundsTest, LinearTransformRoundTrip) {
  const ParamBounds b{"X", -2.0, 6.0, false};
  EXPECT_DOUBLE_EQ(b.to_unit(-2.0), 0.0);
  EXPECT_DOUBLE_EQ(b.to_unit(6.0), 1.0);
  EXPECT_DOUBLE_EQ(b.from_unit(0.5), 2.0);
  EXPECT_DOUBLE_EQ(b.from_unit(b.to_unit(1.234)), 1.234);
  // Clamping outside the box.
  EXPECT_DOUBLE_EQ(b.to_unit(100.0), 1.0);
}

TEST(ParamBoundsTest, LogTransformRoundTrip) {
  const ParamBounds b{"X", 1e-12, 1e-6, true};
  EXPECT_NEAR(b.from_unit(0.5), 1e-9, 1e-12);
  EXPECT_NEAR(b.to_unit(1e-9), 0.5, 1e-12);
}

TEST(ParamBoundsTest, RegisteredNamesResolve) {
  for (const char* name :
       {"VTH0", "U0", "UA", "UB", "UD", "UCS", "CDSC", "CDSCD", "ETAB",
        "DVT0", "DVT1", "VSAT", "PVAG", "PCLM", "RDSW", "CKAPPA", "CGSO",
        "CGDO", "CGSL", "CGDL", "CF", "MOIN", "DELVT", "NFACTOR", "K1B",
        "DVTB"}) {
    EXPECT_NO_THROW(param_bounds(name)) << name;
  }
  EXPECT_THROW(param_bounds("BOGUS"), mivtx::Error);
}

TEST(NelderMead, MinimizesQuadraticBowl) {
  const std::vector<ParamBounds> bounds = {{"a", -10, 10, false},
                                           {"b", -10, 10, false}};
  const Objective f = [](const std::vector<double>& x) {
    return (x[0] - 3.0) * (x[0] - 3.0) + 2.0 * (x[1] + 1.0) * (x[1] + 1.0);
  };
  const OptResult r = nelder_mead(f, bounds, {0.0, 0.0});
  EXPECT_TRUE(r.improved);
  EXPECT_NEAR(r.x[0], 3.0, 1e-3);
  EXPECT_NEAR(r.x[1], -1.0, 1e-3);
}

TEST(NelderMead, Rosenbrock) {
  const std::vector<ParamBounds> bounds = {{"a", -2, 2, false},
                                           {"b", -1, 3, false}};
  const Objective f = [](const std::vector<double>& x) {
    const double a = 1.0 - x[0];
    const double b = x[1] - x[0] * x[0];
    return a * a + 100.0 * b * b;
  };
  NelderMeadOptions opts;
  opts.max_evaluations = 8000;
  opts.restarts = 3;
  const OptResult r = nelder_mead(f, bounds, {-1.2, 1.0}, opts);
  EXPECT_LT(r.value, 1e-3);
}

TEST(NelderMead, RespectsBounds) {
  const std::vector<ParamBounds> bounds = {{"a", 0.0, 1.0, false}};
  // Minimum outside the box -> solution pinned at the boundary.
  const Objective f = [](const std::vector<double>& x) {
    return (x[0] - 5.0) * (x[0] - 5.0);
  };
  const OptResult r = nelder_mead(f, bounds, {0.5});
  EXPECT_NEAR(r.x[0], 1.0, 1e-6);
}

TEST(LevenbergMarquardt, FitsExponentialDecay) {
  // y = A exp(-k t) sampled; recover (A, k).
  const double a_true = 2.5, k_true = 1.7;
  std::vector<double> ts, ys;
  for (double t = 0.0; t <= 3.0; t += 0.25) {
    ts.push_back(t);
    ys.push_back(a_true * std::exp(-k_true * t));
  }
  const std::vector<ParamBounds> bounds = {{"A", 0.1, 10.0, false},
                                           {"k", 0.01, 10.0, false}};
  const ResidualFn fn = [&](const std::vector<double>& x) {
    std::vector<double> r(ts.size());
    for (std::size_t i = 0; i < ts.size(); ++i)
      r[i] = x[0] * std::exp(-x[1] * ts[i]) - ys[i];
    return r;
  };
  const OptResult r = levenberg_marquardt(fn, bounds, {1.0, 0.5});
  EXPECT_NEAR(r.x[0], a_true, 1e-4);
  EXPECT_NEAR(r.x[1], k_true, 1e-4);
}

TEST(Errors, CurveResidualsAndRms) {
  const Curve meas = {{0.0, 1.0}, {1.0, 2.0}, {2.0, 100.0}};
  const Curve fit = {{0.0, 1.1}, {1.0, 2.0}, {2.0, 90.0}};
  const auto r = curve_residuals(meas, fit);
  ASSERT_EQ(r.size(), 3u);
  // Small measured values floored at 2% of the peak (2.0).
  EXPECT_NEAR(r[0], 0.1 / 2.0, 1e-12);
  EXPECT_NEAR(r[1], 0.0, 1e-12);
  EXPECT_NEAR(r[2], -10.0 / 100.0, 1e-12);
  EXPECT_NEAR(rms({0.3, -0.4}), std::sqrt((0.09 + 0.16) / 2.0), 1e-12);
  EXPECT_THROW(curve_residuals(meas, {{0.0, 1.0}}), mivtx::Error);
}

TEST(Dataset, ValidationCatchesBadCurves) {
  CharacteristicSet d;
  d.idvg_low = {{0.0, 1.0}, {0.5, 2.0}};
  d.idvg_high = {{0.5, 2.0}, {0.0, 1.0}};  // not increasing
  d.idvd.push_back({0.5, {{0.0, 1.0}}});
  d.cv = {{0.0, 1e-16}};
  EXPECT_THROW(d.validate(), mivtx::Error);
}

TEST(Dataset, SweepGridShapes) {
  SweepGrid g;
  EXPECT_EQ(g.vg_points().size(), g.n_vg);
  EXPECT_DOUBLE_EQ(g.vg_points().front(), 0.0);
  EXPECT_DOUBLE_EQ(g.vd_points().back(), g.vdd);
}

// Build a synthetic dataset directly from a known card; the pipeline must
// then fit it with small residual error (self-consistency: the model can
// always represent itself).
CharacteristicSet synthesize(const bsimsoi::SoiModelCard& truth,
                             const SweepGrid& grid) {
  CharacteristicSet d;
  d.device_name = "synthetic";
  d.vds_low = 0.05;
  d.vds_high = grid.vdd;
  d.idvg_low = bsimsoi::id_vg(truth, d.vds_low, grid.vg_points());
  d.idvg_high = bsimsoi::id_vg(truth, d.vds_high, grid.vg_points());
  for (double vgs : grid.idvd_vgs)
    d.idvd.push_back({vgs, bsimsoi::id_vd(truth, vgs, grid.vd_points())});
  d.cv = bsimsoi::cgg_vg(truth, 0.0, grid.cv_points());
  return d;
}

TEST(Pipeline, RecoversSelfConsistentModel) {
  bsimsoi::SoiModelCard truth;
  truth.polarity = bsimsoi::Polarity::kNmos;
  truth.vth0 = 0.32;
  truth.l = 24e-9;
  truth.w = 192e-9;
  truth.u0 = 0.045;
  truth.vsat = 1.2e5;
  truth.rdsw = 200.0;
  truth.cgso = truth.cgdo = 5e-11;
  const SweepGrid grid;
  const CharacteristicSet data = synthesize(truth, grid);

  bsimsoi::SoiModelCard init;
  init.polarity = bsimsoi::Polarity::kNmos;
  init.l = truth.l;
  init.w = truth.w;
  const ExtractionReport rep = extract_card(data, init);
  EXPECT_LT(rep.errors.idvg, 0.05);
  EXPECT_LT(rep.errors.idvd, 0.05);
  EXPECT_LT(rep.errors.cv, 0.08);
  // Threshold recovered within tens of millivolts.
  EXPECT_NEAR(rep.card.vth0, truth.vth0, 0.08);
  // Four stages ran (three paper stages + retarget).
  ASSERT_EQ(rep.stages.size(), 4u);
  EXPECT_EQ(rep.stages[0].name, "low-drain");
  EXPECT_EQ(rep.stages[3].name, "ieff-retarget");
  for (const StageReport& st : rep.stages) {
    EXPECT_LE(st.error_after, st.error_before + 1e-12) << st.name;
  }
}

TEST(Pipeline, RetargetNailsEffectiveCurrentPoints) {
  bsimsoi::SoiModelCard truth;
  truth.polarity = bsimsoi::Polarity::kNmos;
  truth.vth0 = 0.36;
  truth.u0 = 0.03;
  truth.l = 24e-9;
  truth.w = 192e-9;
  const SweepGrid grid;
  const CharacteristicSet data = synthesize(truth, grid);
  bsimsoi::SoiModelCard init;
  init.polarity = bsimsoi::Polarity::kNmos;
  init.l = truth.l;
  init.w = truth.w;
  const ExtractionReport rep = extract_card(data, init);
  const double half = 0.5 * grid.vdd;
  const double fit_a = bsimsoi::id_vg(rep.card, grid.vdd, {half})[0].y;
  const double ref_a = bsimsoi::id_vg(truth, grid.vdd, {half})[0].y;
  EXPECT_NEAR(fit_a / ref_a, 1.0, 1e-3);
  const double fit_b = bsimsoi::id_vd(rep.card, grid.vdd, {half})[0].y;
  const double ref_b = bsimsoi::id_vd(truth, grid.vdd, {half})[0].y;
  EXPECT_NEAR(fit_b / ref_b, 1.0, 1e-3);
}

TEST(Pipeline, PmosSignConvention) {
  bsimsoi::SoiModelCard truth;
  truth.polarity = bsimsoi::Polarity::kPmos;
  truth.vth0 = -0.34;
  truth.u0 = 0.012;
  truth.l = 24e-9;
  truth.w = 192e-9;
  const SweepGrid grid;
  const CharacteristicSet data = synthesize(truth, grid);
  bsimsoi::SoiModelCard init;
  init.polarity = bsimsoi::Polarity::kPmos;
  init.vth0 = -0.3;
  init.u0 = 0.012;
  init.l = truth.l;
  init.w = truth.w;
  const ExtractionReport rep = extract_card(data, init);
  EXPECT_LT(rep.card.vth0, 0.0);  // conventional PMOS sign restored
  EXPECT_LT(rep.errors.idvg, 0.08);
}

TEST(Pipeline, SymmetricOverlapsEnforced) {
  bsimsoi::SoiModelCard truth;
  truth.polarity = bsimsoi::Polarity::kNmos;
  truth.l = 24e-9;
  truth.w = 192e-9;
  truth.cgso = truth.cgdo = 8e-11;
  truth.cgsl = truth.cgdl = 3e-11;
  const SweepGrid grid;
  const CharacteristicSet data = synthesize(truth, grid);
  bsimsoi::SoiModelCard init;
  init.polarity = bsimsoi::Polarity::kNmos;
  init.l = truth.l;
  init.w = truth.w;
  const ExtractionReport rep = extract_card(data, init);
  EXPECT_DOUBLE_EQ(rep.card.cgso, rep.card.cgdo);
  EXPECT_DOUBLE_EQ(rep.card.cgsl, rep.card.cgdl);
}

}  // namespace
}  // namespace mivtx::extract
