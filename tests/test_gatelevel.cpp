// Gate-level netlists: construction invariants, generator correctness
// (checked against arithmetic/boolean references over exhaustive or random
// vectors), and static timing analysis.
#include <gtest/gtest.h>

#include "common/error.h"
#include "common/rng.h"
#include "common/strings.h"
#include "gatelevel/netlist.h"
#include "gatelevel/sta.h"

namespace mivtx::gatelevel {
namespace {

TEST(GateNetlist, RejectsDoubleDrivers) {
  GateNetlist n("t");
  n.add_input("a");
  n.add_instance(cells::CellType::kInv1, "u1", {"a"}, "x");
  EXPECT_THROW(n.add_instance(cells::CellType::kInv1, "u2", {"a"}, "x"),
               mivtx::Error);
  EXPECT_THROW(n.add_input("x"), mivtx::Error);
}

TEST(GateNetlist, RejectsWrongArity) {
  GateNetlist n("t");
  n.add_input("a");
  EXPECT_THROW(n.add_instance(cells::CellType::kNand2, "u1", {"a"}, "x"),
               mivtx::Error);
}

TEST(GateNetlist, FinalizeCatchesUndrivenNets) {
  GateNetlist n("t");
  n.add_input("a");
  n.add_instance(cells::CellType::kNand2, "u1", {"a", "ghost"}, "x");
  n.add_output("x");
  EXPECT_THROW(n.finalize(), mivtx::Error);
}

TEST(GateNetlist, FinalizeCatchesCycles) {
  GateNetlist n("t");
  n.add_input("a");
  n.add_instance(cells::CellType::kNand2, "u1", {"a", "y"}, "x");
  n.add_instance(cells::CellType::kInv1, "u2", {"x"}, "y");
  n.add_output("y");
  EXPECT_THROW(n.finalize(), mivtx::Error);
}

TEST(GateNetlist, TopologicalOrderRespectsDependencies) {
  GateNetlist n("t");
  n.add_input("a");
  n.add_instance(cells::CellType::kInv1, "u1", {"a"}, "x1");
  n.add_instance(cells::CellType::kInv1, "u2", {"x1"}, "x2");
  n.add_instance(cells::CellType::kInv1, "u3", {"x2"}, "x3");
  n.add_output("x3");
  n.finalize();
  const auto& topo = n.topological_order();
  ASSERT_EQ(topo.size(), 3u);
  EXPECT_LT(topo[0], topo[1]);
  EXPECT_LT(topo[1], topo[2]);
}

TEST(GateNetlist, FanoutCounts) {
  GateNetlist n("t");
  n.add_input("a");
  n.add_instance(cells::CellType::kInv1, "u1", {"a"}, "x");
  n.add_instance(cells::CellType::kInv1, "u2", {"x"}, "y1");
  n.add_instance(cells::CellType::kInv1, "u3", {"x"}, "y2");
  n.add_output("x");
  n.add_output("y1");
  n.add_output("y2");
  n.finalize();
  EXPECT_EQ(n.fanout("x"), 3u);  // two instance pins + primary output
  EXPECT_EQ(n.fanout("a"), 1u);
}

TEST(Generators, RippleCarryAdderAddsExhaustively4Bit) {
  const GateNetlist n = ripple_carry_adder(4);
  for (unsigned a = 0; a < 16; ++a) {
    for (unsigned b = 0; b < 16; ++b) {
      for (unsigned cin = 0; cin < 2; ++cin) {
        std::map<std::string, bool> in;
        for (unsigned i = 0; i < 4; ++i) {
          in[format("a%u", i)] = (a >> i) & 1u;
          in[format("b%u", i)] = (b >> i) & 1u;
        }
        in["cin"] = cin;
        const auto out = n.evaluate(in);
        unsigned sum = 0;
        for (unsigned i = 0; i < 4; ++i)
          sum |= static_cast<unsigned>(out.at(format("s%u", i))) << i;
        sum |= static_cast<unsigned>(out.at("c4")) << 4;
        EXPECT_EQ(sum, a + b + cin) << a << "+" << b << "+" << cin;
        EXPECT_EQ(out.at("cout_alias"), out.at("c4"));
      }
    }
  }
}

TEST(Generators, DecoderOneHot) {
  const GateNetlist n = decoder(3);
  for (unsigned addr = 0; addr < 8; ++addr) {
    std::map<std::string, bool> in;
    in["en"] = true;
    for (unsigned i = 0; i < 3; ++i) in[format("a%u", i)] = (addr >> i) & 1u;
    const auto out = n.evaluate(in);
    for (unsigned r = 0; r < 8; ++r) {
      EXPECT_EQ(out.at(format("y%u", r)), r == addr) << addr << " " << r;
    }
    // Disabled: all zero.
    in["en"] = false;
    const auto off = n.evaluate(in);
    for (unsigned r = 0; r < 8; ++r) EXPECT_FALSE(off.at(format("y%u", r)));
  }
}

TEST(Generators, ParityTreeMatchesXorReduce) {
  const GateNetlist n = parity_tree(8);
  Rng rng(3);
  for (int trial = 0; trial < 64; ++trial) {
    std::map<std::string, bool> in;
    bool expect = false;
    for (unsigned i = 0; i < 8; ++i) {
      const bool v = rng.bernoulli(0.5);
      in[format("d%u", i)] = v;
      expect ^= v;
    }
    EXPECT_EQ(n.evaluate(in).at("parity"), expect);
  }
}

TEST(Generators, MuxTreeSelects) {
  const GateNetlist n = mux_tree(8);
  Rng rng(5);
  for (int trial = 0; trial < 64; ++trial) {
    std::map<std::string, bool> in;
    bool data[8];
    for (unsigned i = 0; i < 8; ++i) {
      data[i] = rng.bernoulli(0.5);
      in[format("d%u", i)] = data[i];
    }
    const unsigned sel = static_cast<unsigned>(rng.uniform_index(8));
    for (unsigned s = 0; s < 3; ++s) in[format("s%u", s)] = (sel >> s) & 1u;
    EXPECT_EQ(n.evaluate(in).at("y"), data[sel]) << "sel=" << sel;
  }
}

TEST(Generators, AoiBlockEvaluates) {
  const GateNetlist n = aoi_block();
  std::map<std::string, bool> in{{"d0", true}, {"d1", false},
                                 {"d2", true}, {"d3", false}};
  const auto out = n.evaluate(in);
  // z0 = !((d0&d1)|d2) = !(0|1) = 0 ; z1 = !((d1|d2)&d3) = !(1&0) = 1
  EXPECT_FALSE(out.at("z0"));
  EXPECT_TRUE(out.at("z1"));
}

TEST(Generators, HistogramsCoverExpectedCells) {
  const auto h = ripple_carry_adder(8).cell_histogram();
  EXPECT_EQ(h.at(cells::CellType::kXor2), 16u);
  EXPECT_EQ(h.at(cells::CellType::kAnd2), 16u);
  EXPECT_EQ(h.at(cells::CellType::kOr2), 8u);
  EXPECT_EQ(h.at(cells::CellType::kInv1), 2u);
}

// --- STA ------------------------------------------------------------------

TimingModel unit_timing(double inv = 1.0, double nand2 = 2.0,
                        double xor2 = 4.0) {
  TimingModel m;
  m.c_ref = 1e-15;
  for (cells::Implementation impl : cells::all_implementations()) {
    m.load_slope[impl] = 0.0;
    for (cells::CellType t : cells::all_cells()) {
      double d = 1.0;
      if (t == cells::CellType::kInv1) d = inv;
      if (t == cells::CellType::kNand2) d = nand2;
      if (t == cells::CellType::kXor2) d = xor2;
      m.cells[impl][t] = CellTiming{d, 0.0};
    }
  }
  return m;
}

TEST(Sta, ChainDelayAdds) {
  GateNetlist n("chain");
  n.add_input("a");
  n.add_instance(cells::CellType::kInv1, "u1", {"a"}, "x1");
  n.add_instance(cells::CellType::kInv1, "u2", {"x1"}, "x2");
  n.add_instance(cells::CellType::kInv1, "u3", {"x2"}, "x3");
  n.add_output("x3");
  n.finalize();
  const StaResult r = run_sta(n, unit_timing(), cells::Implementation::k2D);
  EXPECT_DOUBLE_EQ(r.critical_delay, 3.0);
  ASSERT_EQ(r.critical_path.size(), 3u);
  EXPECT_EQ(r.critical_path.front(), "u1");
  EXPECT_EQ(r.critical_path.back(), "u3");
}

TEST(Sta, PicksSlowestBranch) {
  GateNetlist n("branch");
  n.add_input("a");
  n.add_input("b");
  // Fast branch: one INV; slow branch: XOR2 (d = 4).
  n.add_instance(cells::CellType::kInv1, "u_fast", {"a"}, "f");
  n.add_instance(cells::CellType::kXor2, "u_slow", {"a", "b"}, "s");
  n.add_instance(cells::CellType::kNand2, "u_join", {"f", "s"}, "y");
  n.add_output("y");
  n.finalize();
  const StaResult r = run_sta(n, unit_timing(), cells::Implementation::k2D);
  EXPECT_DOUBLE_EQ(r.critical_delay, 4.0 + 2.0);
  ASSERT_GE(r.critical_path.size(), 2u);
  EXPECT_EQ(r.critical_path[0], "u_slow");
}

TEST(Sta, LoadSlopePenalizesFanout) {
  GateNetlist n("fan");
  n.add_input("a");
  n.add_instance(cells::CellType::kInv1, "u_drv", {"a"}, "x");
  for (int i = 0; i < 4; ++i) {
    n.add_instance(cells::CellType::kInv1, format("u_l%d", i), {"x"},
                   format("y%d", i));
    n.add_output(format("y%d", i));
  }
  n.finalize();
  TimingModel m = unit_timing();
  // Each pin loads 0.5 fF, slope 1 s/F; the driver sees 4 x 0.5 fF vs the
  // 1 fF reference -> +1 fF * slope on its delay.
  for (auto& [impl, per_cell] : m.cells) {
    for (auto& [t, ct] : per_cell) ct.input_cap = 0.5e-15;
  }
  for (auto& [impl, s] : m.load_slope) s = 1.0e15;  // 1 unit per fF
  const StaResult r = run_sta(n, m, cells::Implementation::k2D);
  // u_drv: 1.0 + 1e15 * (2 fF - 1 fF) = 2.0; leaves: 1.0 + 1e15*(1fF-1fF)
  // (each leaf drives one primary output = c_ref).
  EXPECT_NEAR(r.critical_delay, 3.0, 1e-9);
}

TEST(Generators, AluBlockMatchesArithmeticReference) {
  const std::size_t bits = 4;
  const GateNetlist alu = alu_block(bits);
  // op: 0 = AND, 1 = OR, 2 = XOR, 3 = ADD.
  for (const unsigned a : {0u, 5u, 9u, 15u}) {
    for (const unsigned b : {0u, 3u, 12u, 15u}) {
      for (unsigned op = 0; op < 4; ++op) {
        for (const unsigned cin : {0u, 1u}) {
          std::map<std::string, bool> in;
          for (std::size_t i = 0; i < bits; ++i) {
            in[format("a%zu", i)] = (a >> i) & 1u;
            in[format("b%zu", i)] = (b >> i) & 1u;
          }
          in["cin"] = cin != 0;
          in["op0"] = (op & 1u) != 0;
          in["op1"] = (op & 2u) != 0;
          const auto nets = alu.evaluate(in);
          unsigned expect = 0;
          switch (op) {
            case 0: expect = a & b; break;
            case 1: expect = a | b; break;
            case 2: expect = a ^ b; break;
            case 3: expect = a + b + cin; break;
          }
          for (std::size_t i = 0; i < bits; ++i) {
            EXPECT_EQ(nets.at(format("y%zu", i)), ((expect >> i) & 1u) != 0)
                << "a=" << a << " b=" << b << " op=" << op << " bit " << i;
          }
          if (op == 3) {
            EXPECT_EQ(nets.at(format("c%zu", bits)),
                      ((expect >> bits) & 1u) != 0);
          }
        }
      }
    }
  }
}

TEST(Generators, AluBlockScalesPastFiveHundredInstances) {
  // The analyzer CI gate runs on alu64; keep it above the 500-instance bar.
  EXPECT_GE(alu_block(64).instances().size(), 500u);
  EXPECT_EQ(alu_block(64).instances().size(), 64u * 9u);
}

TEST(Sta, EmptyNetlistHasZeroDelay) {
  GateNetlist n("wire");
  n.add_input("a");
  n.add_output("a");
  n.finalize();
  const StaResult r = run_sta(n, unit_timing(), cells::Implementation::k2D);
  EXPECT_DOUBLE_EQ(r.critical_delay, 0.0);
  EXPECT_EQ(r.critical_output, "a");
  EXPECT_TRUE(r.critical_path.empty());
}

TEST(Sta, PerOutputLoadOverridesApply) {
  GateNetlist n("drv");
  n.add_input("a");
  n.add_instance(cells::CellType::kInv1, "u1", {"a"}, "y");
  n.add_output("y");
  n.finalize();
  TimingModel m = unit_timing();
  for (auto& [impl, s] : m.load_slope) s = 1.0e15;  // 1 delay unit per fF

  // Default: one reference load per output -> no load penalty.
  EXPECT_NEAR(run_sta(n, m, cells::Implementation::k2D).critical_delay, 1.0,
              1e-12);
  // Global default-output-load override: 3 fF -> +2 units.
  StaLoadOptions loads;
  loads.default_output_load = 3e-15;
  EXPECT_NEAR(run_sta(n, m, cells::Implementation::k2D, loads).critical_delay,
              3.0, 1e-12);
  // Per-output override beats the default.
  loads.output_load["y"] = 2e-15;
  EXPECT_NEAR(run_sta(n, m, cells::Implementation::k2D, loads).critical_delay,
              2.0, 1e-12);
}

TEST(Sta, ZeroSlopeIgnoresLoadOptions) {
  GateNetlist n("drv");
  n.add_input("a");
  n.add_instance(cells::CellType::kInv1, "u1", {"a"}, "y");
  n.add_output("y");
  n.finalize();
  const TimingModel m = unit_timing();  // load_slope = 0
  StaLoadOptions loads;
  loads.output_load["y"] = 100e-15;
  loads.extra_net_load["y"] = 100e-15;
  EXPECT_DOUBLE_EQ(
      run_sta(n, m, cells::Implementation::k2D, loads).critical_delay, 1.0);
}

TEST(Sta, ExtraNetLoadAddsWireDelay) {
  GateNetlist n("chain");
  n.add_input("a");
  n.add_instance(cells::CellType::kInv1, "u1", {"a"}, "x");
  n.add_instance(cells::CellType::kInv1, "u2", {"x"}, "y");
  n.add_output("y");
  n.finalize();
  TimingModel m = unit_timing();
  for (auto& [impl, per_cell] : m.cells) {
    for (auto& [t, ct] : per_cell) ct.input_cap = 1e-15;
  }
  for (auto& [impl, s] : m.load_slope) s = 1.0e15;
  // Baseline: u1 sees u2's 1 fF pin (= c_ref), u2 one reference load.
  EXPECT_NEAR(run_sta(n, m, cells::Implementation::k2D).critical_delay, 2.0,
              1e-12);
  // 1 fF of wire load on the internal net adds one unit to u1 only.
  StaLoadOptions loads;
  loads.extra_net_load["x"] = 1e-15;
  EXPECT_NEAR(run_sta(n, m, cells::Implementation::k2D, loads).critical_delay,
              3.0, 1e-12);
  // net_loads reports the same electricals the STA used.
  const auto nl = net_loads(n, m, cells::Implementation::k2D, loads);
  EXPECT_NEAR(nl.at("x"), 2e-15, 1e-27);
  EXPECT_NEAR(nl.at("y"), 1e-15, 1e-27);
}

TEST(Sta, MissingTimingThrows) {
  GateNetlist n("t");
  n.add_input("a");
  n.add_instance(cells::CellType::kInv1, "u1", {"a"}, "y");
  n.add_output("y");
  n.finalize();
  const TimingModel empty;
  EXPECT_THROW(run_sta(n, empty, cells::Implementation::k2D), mivtx::Error);
}

}  // namespace
}  // namespace mivtx::gatelevel
