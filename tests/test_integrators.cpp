// Integration-method order checks, driven through the raw MNA companion
// machinery (the transient() driver only exposes BDF2; BE and trapezoidal
// remain available for accuracy cross-checks and are validated here).
#include <gtest/gtest.h>

#include <cmath>

#include "spice/circuit.h"
#include "spice/dcop.h"
#include "spice/mna.h"

namespace mivtx::spice {
namespace {

// Fixed-step integration of an RC discharge (C charged to 1 V through R to
// ground) with a chosen method; returns the final voltage.
double integrate_rc_discharge(Integrator method, double h,
                              std::size_t steps) {
  const double r = 1e3, c = 1e-12;  // tau = 1 ns
  Circuit ckt;
  const NodeId out = ckt.node("out");
  // Establish the initial condition with a source, then integrate with the
  // source removed -> build a second circuit sharing the cap state.
  ckt.add_resistor("R1", out, kGround, r);
  ckt.add_capacitor("C1", out, kGround, c);

  // Initial state: v(out) = 1.
  const std::size_t n = ckt.system_size();
  linalg::Vector x(n, 0.0);
  x[ckt.node_unknown(out)] = 1.0;
  DynamicState state;
  evaluate_charges(ckt, x, state);
  state.iq.assign(state.q.size(), 0.0);
  // Trapezoidal history: i through the cap at t=0 is -v/R (discharging).
  if (method == Integrator::kTrapezoidal) {
    state.iq[0] = -1.0 / r;
  }
  DynamicState state_prev = state;

  AssemblyContext ctx;
  ctx.gmin = 1e-15;
  double h_prev = 0.0;
  for (std::size_t k = 0; k < steps; ++k) {
    ctx.integrator = method;
    if (method == Integrator::kBdf2 && k == 0) {
      ctx.integrator = Integrator::kBackwardEuler;  // startup
    }
    ctx.h = h;
    ctx.prev = &state;
    ctx.prev2 = &state_prev;
    ctx.step_ratio = h_prev > 0.0 ? h / h_prev : 1.0;
    ctx.time = static_cast<double>(k + 1) * h;
    linalg::Vector xn = x;
    const NewtonResult nr = solve_newton(ckt, ctx, xn);
    EXPECT_TRUE(nr.converged);
    DynamicState ns;
    linalg::DenseMatrix jac;
    linalg::Vector f;
    assemble(ckt, xn, ctx, jac, f, &ns);
    state_prev = std::move(state);
    state = std::move(ns);
    x = std::move(xn);
    h_prev = h;
  }
  return x[ckt.node_unknown(out)];
}

double order_of(Integrator method) {
  // Error at t = 1 ns with h and h/2; order = log2(e(h)/e(h/2)).
  const double t_end = 1e-9;
  const double exact = std::exp(-1.0);
  const double e1 =
      std::fabs(integrate_rc_discharge(method, t_end / 20, 20) - exact);
  const double e2 =
      std::fabs(integrate_rc_discharge(method, t_end / 40, 40) - exact);
  return std::log2(e1 / e2);
}

TEST(Integrators, BackwardEulerIsFirstOrder) {
  EXPECT_NEAR(order_of(Integrator::kBackwardEuler), 1.0, 0.15);
}

TEST(Integrators, TrapezoidalIsSecondOrder) {
  EXPECT_NEAR(order_of(Integrator::kTrapezoidal), 2.0, 0.25);
}

TEST(Integrators, Bdf2IsSecondOrder) {
  // The BE startup step costs a little order near the measurement point;
  // accept anything clearly above first order.
  EXPECT_GT(order_of(Integrator::kBdf2), 1.6);
}

TEST(Integrators, Bdf2DampsStiffModes) {
  // One huge step (h >> tau) must not overshoot or ring: v stays in [0, 1).
  const double v_be =
      integrate_rc_discharge(Integrator::kBackwardEuler, 1e-7, 3);
  const double v_bdf2 = integrate_rc_discharge(Integrator::kBdf2, 1e-7, 3);
  EXPECT_GE(v_be, 0.0);
  EXPECT_LT(v_be, 0.05);
  // BDF2 may undershoot by a strongly damped epsilon, never ring.
  EXPECT_GT(v_bdf2, -1e-2);
  EXPECT_LT(v_bdf2, 0.05);
  // Trapezoidal at the same step rings around zero (the known limitation
  // that motivated BDF2); its magnitude stays bounded but alternates.
  const double v_tr1 =
      integrate_rc_discharge(Integrator::kTrapezoidal, 1e-7, 1);
  EXPECT_LT(v_tr1, 0.0);  // first step overshoots through zero
}

}  // namespace
}  // namespace mivtx::spice
