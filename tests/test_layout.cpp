// Layout area model: geometry sanity, implementation ordering, and the
// paper's average savings bands (regression-pinned).
#include <gtest/gtest.h>

#include "cells/celltypes.h"
#include "layout/cell_layout.h"

namespace mivtx::layout {
namespace {

using cells::CellType;
using cells::Implementation;

TEST(Rules, KeepoutGeometry) {
  DesignRules r;
  EXPECT_DOUBLE_EQ(r.miv_keepout_ring(), r.m1_space);
  EXPECT_DOUBLE_EQ(r.miv_keepout_edge(), 25e-9 + 2e-9 + 48e-9);
}

TEST(Layout, AreasPositiveForAllCellsAndImpls) {
  const LayoutModel model;
  for (CellType t : cells::all_cells()) {
    for (Implementation impl : cells::all_implementations()) {
      const CellLayout l = model.layout_cell(t, impl);
      EXPECT_GT(l.cell_area(), 0.0);
      EXPECT_GT(l.top.area(), 0.0);
      EXPECT_GT(l.bottom.area(), 0.0);
      EXPECT_GE(l.cell_width, std::max(l.top.width, l.bottom.width));
      EXPECT_GE(l.cell_height, std::max(l.top.height, l.bottom.height));
      EXPECT_LE(l.substrate_area(), 2.1 * l.cell_area());
    }
  }
}

TEST(Layout, MoreDevicesMoreArea) {
  const LayoutModel model;
  const double inv =
      model.layout_cell(CellType::kInv1, Implementation::k2D).cell_area();
  const double nand2 =
      model.layout_cell(CellType::kNand2, Implementation::k2D).cell_area();
  const double nand3 =
      model.layout_cell(CellType::kNand3, Implementation::k2D).cell_area();
  EXPECT_LT(inv, nand2);
  EXPECT_LT(nand2, nand3);
}

TEST(Layout, ExternalMivCountMatchesGateNets) {
  EXPECT_EQ(count_gate_nets(CellType::kInv1), 1);
  EXPECT_EQ(count_gate_nets(CellType::kNand2), 2);
  EXPECT_EQ(count_gate_nets(CellType::kAnd2), 3);   // A, B, Yb
  EXPECT_EQ(count_gate_nets(CellType::kXor2), 4);   // A, B, A_n, B_n
  EXPECT_EQ(count_gate_nets(CellType::kMux2), 5);   // A, B, S, S_n, Yb
  const LayoutModel model;
  const CellLayout l = model.layout_cell(CellType::kNand2, Implementation::k2D);
  EXPECT_EQ(l.external_mivs, 2);
  const CellLayout lm =
      model.layout_cell(CellType::kNand2, Implementation::kMiv2Channel);
  EXPECT_EQ(lm.external_mivs, 0);
}

TEST(Layout, TwoChannelBeatsOthersOnAverage) {
  const LayoutModel model;
  double sum[4] = {0, 0, 0, 0};
  for (CellType t : cells::all_cells()) {
    int k = 0;
    for (Implementation impl : cells::all_implementations())
      sum[k++] += model.layout_cell(t, impl).cell_area();
  }
  // 2-channel is the overall area winner (paper: -18% average).
  EXPECT_LT(sum[2], sum[1]);
  EXPECT_LT(sum[2], sum[3]);
  EXPECT_LT(sum[1], sum[0]);
}

TEST(Layout, AverageSavingsInPaperBands) {
  // Paper Fig. 5(c): average layout-area reduction of 9 / 18 / 12 % for
  // 1-ch / 2-ch / 4-ch.  The calibrated model must stay within a few
  // points of those numbers.
  const LayoutModel model;
  double sum[4] = {0, 0, 0, 0};
  for (CellType t : cells::all_cells()) {
    int k = 0;
    for (Implementation impl : cells::all_implementations())
      sum[k++] += model.layout_cell(t, impl).cell_area();
  }
  const double d1 = 100.0 * (sum[1] - sum[0]) / sum[0];
  const double d2 = 100.0 * (sum[2] - sum[0]) / sum[0];
  const double d4 = 100.0 * (sum[3] - sum[0]) / sum[0];
  EXPECT_NEAR(d1, -9.0, 3.0);
  EXPECT_NEAR(d2, -18.0, 3.0);
  EXPECT_NEAR(d4, -12.0, 3.0);
}

TEST(Layout, SubstrateAreaSavingsLargerPerTier) {
  // The top-tier-only savings exceed the max()-coupled cell-area savings
  // for the 4-channel device (the paper's "separate placement" argument).
  const LayoutModel model;
  double top2d = 0.0, top4 = 0.0;
  for (CellType t : cells::all_cells()) {
    top2d += model.layout_cell(t, Implementation::k2D).top.area();
    top4 += model.layout_cell(t, Implementation::kMiv4Channel).top.area();
  }
  const double top_saving = (top2d - top4) / top2d;
  EXPECT_GT(top_saving, 0.15);  // strictly better than the cell-area -12%
}

TEST(Layout, KeepoutRuleDrivesThe2dPenalty) {
  DesignRules tight;
  tight.m1_space = 12e-9;  // half the keep-out ring
  const LayoutModel loose_model;  // default 24 nm
  const LayoutModel tight_model(tight);
  const double loose =
      loose_model.layout_cell(CellType::kNand3, Implementation::k2D)
          .cell_area();
  const double tightened =
      tight_model.layout_cell(CellType::kNand3, Implementation::k2D)
          .cell_area();
  EXPECT_LT(tightened, loose);
  // MIV-transistor implementations don't pay keep-out, so they are nearly
  // unaffected by the same rule change.
  const double miv_loose =
      loose_model.layout_cell(CellType::kNand3, Implementation::kMiv2Channel)
          .cell_area();
  const double miv_tight =
      tight_model.layout_cell(CellType::kNand3, Implementation::kMiv2Channel)
          .cell_area();
  EXPECT_DOUBLE_EQ(miv_loose, miv_tight);
}

TEST(Layout, WiderDeviceRaisesHeightNotWidth) {
  DesignRules wide;
  wide.device_width = 384e-9;
  const LayoutModel base_model;
  const LayoutModel wide_model(wide);
  const CellLayout a =
      base_model.layout_cell(CellType::kInv1, Implementation::k2D);
  const CellLayout b =
      wide_model.layout_cell(CellType::kInv1, Implementation::k2D);
  EXPECT_GT(b.cell_height, a.cell_height);
  EXPECT_DOUBLE_EQ(b.cell_width, a.cell_width);
}

}  // namespace
}  // namespace mivtx::layout
