// Linear algebra: dense/banded LU, sparse kernels, iterative solver.
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"
#include "common/rng.h"
#include "linalg/banded.h"
#include "linalg/dense.h"
#include "linalg/sparse.h"
#include "linalg/vector_ops.h"

namespace mivtx::linalg {
namespace {

TEST(VectorOps, Basics) {
  Vector a{1, 2, 3}, b{4, 5, 6};
  EXPECT_DOUBLE_EQ(dot(a, b), 32.0);
  EXPECT_DOUBLE_EQ(norm2(Vector{3, 4}), 5.0);
  EXPECT_DOUBLE_EQ(norm_inf(Vector{-7, 2}), 7.0);
  axpy(2.0, a, b);
  EXPECT_DOUBLE_EQ(b[2], 12.0);
  EXPECT_DOUBLE_EQ(sub(a, a)[1], 0.0);
  EXPECT_DOUBLE_EQ(max_abs_diff(a, Vector{1, 2, 4}), 1.0);
  EXPECT_THROW(dot(a, Vector{1.0}), Error);
}

TEST(VectorOps, Linspace) {
  const Vector v = linspace(0.0, 1.0, 5);
  ASSERT_EQ(v.size(), 5u);
  EXPECT_DOUBLE_EQ(v[0], 0.0);
  EXPECT_DOUBLE_EQ(v[2], 0.5);
  EXPECT_DOUBLE_EQ(v[4], 1.0);
  EXPECT_EQ(linspace(2.0, 9.0, 1).size(), 1u);
  EXPECT_DOUBLE_EQ(linspace(2.0, 9.0, 1)[0], 2.0);
}

TEST(Dense, SolveKnownSystem) {
  DenseMatrix a(2, 2);
  a(0, 0) = 2.0;
  a(0, 1) = 1.0;
  a(1, 0) = 1.0;
  a(1, 1) = 3.0;
  const Vector x = solve_dense(a, Vector{5.0, 10.0});
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(Dense, PivotingHandlesZeroDiagonal) {
  DenseMatrix a(2, 2);
  a(0, 1) = 1.0;
  a(1, 0) = 1.0;
  const Vector x = solve_dense(a, Vector{2.0, 3.0});
  EXPECT_NEAR(x[0], 3.0, 1e-12);
  EXPECT_NEAR(x[1], 2.0, 1e-12);
}

TEST(Dense, DetectsSingular) {
  DenseMatrix a(2, 2);
  a(0, 0) = 1.0;
  a(0, 1) = 2.0;
  a(1, 0) = 2.0;
  a(1, 1) = 4.0;
  EXPECT_THROW(DenseLU{a}, Error);
}

class DenseRandomTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(DenseRandomTest, ResidualSmall) {
  const std::size_t n = GetParam();
  Rng rng(1000 + n);
  DenseMatrix a(n, n);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < n; ++c) a(r, c) = rng.uniform(-1, 1);
    a(r, r) += 3.0;  // diagonally dominant-ish
  }
  Vector b(n);
  for (auto& v : b) v = rng.uniform(-1, 1);
  const Vector x = DenseLU(a).solve(b);
  const Vector r = sub(a.multiply(x), b);
  EXPECT_LT(norm_inf(r), 1e-10);
}

INSTANTIATE_TEST_SUITE_P(Sizes, DenseRandomTest,
                         ::testing::Values(1, 2, 3, 5, 10, 25, 60));

TEST(Dense, MultiplyTransposeMatmul) {
  DenseMatrix a(2, 3);
  a(0, 0) = 1;
  a(0, 1) = 2;
  a(0, 2) = 3;
  a(1, 0) = 4;
  a(1, 1) = 5;
  a(1, 2) = 6;
  const Vector y = a.multiply(Vector{1, 1, 1});
  EXPECT_DOUBLE_EQ(y[0], 6);
  EXPECT_DOUBLE_EQ(y[1], 15);
  const DenseMatrix at = a.transpose();
  EXPECT_DOUBLE_EQ(at(2, 1), 6);
  const DenseMatrix ata = at.multiply(a);
  EXPECT_EQ(ata.rows(), 3u);
  EXPECT_DOUBLE_EQ(ata(0, 0), 17.0);
}

struct BandShape {
  std::size_t n, kl, ku;
};

class BandedVsDenseTest : public ::testing::TestWithParam<BandShape> {};

TEST_P(BandedVsDenseTest, MatchesDense) {
  const auto [n, kl, ku] = GetParam();
  Rng rng(42 + n * 10 + kl);
  BandedMatrix bm(n, kl, ku);
  DenseMatrix dm(n, n);
  for (std::size_t r = 0; r < n; ++r) {
    const std::size_t c0 = r > kl ? r - kl : 0;
    const std::size_t c1 = std::min(n - 1, r + ku);
    for (std::size_t c = c0; c <= c1; ++c) {
      double v = rng.uniform(-1, 1);
      if (r == c) v += 4.0;
      bm.set(r, c, v);
      dm(r, c) = v;
    }
  }
  Vector b(n);
  for (auto& v : b) v = rng.uniform(-1, 1);
  // Multiply agrees.
  EXPECT_LT(max_abs_diff(bm.multiply(b), dm.multiply(b)), 1e-12);
  // Solve agrees.
  const Vector xb = BandedLU(bm).solve(b);
  const Vector xd = DenseLU(dm).solve(b);
  EXPECT_LT(max_abs_diff(xb, xd), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Shapes, BandedVsDenseTest,
                         ::testing::Values(BandShape{5, 1, 1},
                                           BandShape{10, 2, 3},
                                           BandShape{30, 4, 4},
                                           BandShape{50, 7, 2},
                                           BandShape{64, 15, 15}));

TEST(Banded, OutOfBandAccess) {
  BandedMatrix b(6, 1, 1);
  EXPECT_DOUBLE_EQ(b.at(0, 5), 0.0);
  EXPECT_THROW(b.set(0, 5, 1.0), mivtx::Error);
  EXPECT_THROW(b.at(6, 0), mivtx::Error);
}

TEST(Banded, DetectsSingular) {
  BandedMatrix b(3, 1, 1);
  b.set(0, 0, 1.0);
  b.set(1, 1, 0.0);
  b.set(2, 2, 1.0);
  EXPECT_THROW(BandedLU{b}, mivtx::Error);
}

TEST(Sparse, BuildAndMultiply) {
  SparseBuilder sb(3, 3);
  sb.add(0, 0, 2.0);
  sb.add(0, 0, 1.0);  // accumulates to 3
  sb.add(1, 2, -1.0);
  sb.add(2, 1, 4.0);
  sb.add(2, 2, 0.0);  // dropped
  const SparseMatrix m(sb);
  EXPECT_EQ(m.num_nonzeros(), 3u);
  EXPECT_DOUBLE_EQ(m.at(0, 0), 3.0);
  EXPECT_DOUBLE_EQ(m.at(1, 2), -1.0);
  EXPECT_DOUBLE_EQ(m.at(1, 1), 0.0);
  const Vector y = m.multiply(Vector{1, 2, 3});
  EXPECT_DOUBLE_EQ(y[0], 3.0);
  EXPECT_DOUBLE_EQ(y[1], -3.0);
  EXPECT_DOUBLE_EQ(y[2], 8.0);
}

TEST(Sparse, CancellingDuplicatesDropped) {
  SparseBuilder sb(2, 2);
  sb.add(0, 0, 1.0);
  sb.add(0, 1, 5.0);
  sb.add(0, 1, -5.0);
  sb.add(1, 1, 1.0);
  const SparseMatrix m(sb);
  EXPECT_EQ(m.num_nonzeros(), 2u);
}

TEST(Sparse, BicgstabSolvesSpdSystem) {
  // 1-D Laplacian, n = 50.
  const std::size_t n = 50;
  SparseBuilder sb(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    sb.add(i, i, 2.0);
    if (i > 0) sb.add(i, i - 1, -1.0);
    if (i + 1 < n) sb.add(i, i + 1, -1.0);
  }
  const SparseMatrix a(sb);
  Vector b(n, 1.0);
  Vector x;
  const IterativeResult r = bicgstab(a, b, x, nullptr, 1e-12, 500);
  EXPECT_TRUE(r.converged);
  EXPECT_LT(norm_inf(sub(a.multiply(x), b)), 1e-8);
}

TEST(Sparse, Ilu0PreconditioningReducesIterations) {
  const std::size_t n = 120;
  Rng rng(5);
  SparseBuilder sb(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    sb.add(i, i, 4.0 + rng.uniform(0, 1));
    if (i > 0) sb.add(i, i - 1, -1.0 + 0.1 * rng.uniform(-1, 1));
    if (i + 1 < n) sb.add(i, i + 1, -1.0 + 0.1 * rng.uniform(-1, 1));
    if (i + 10 < n) sb.add(i, i + 10, -0.4);
    if (i >= 10) sb.add(i, i - 10, -0.4);
  }
  const SparseMatrix a(sb);
  Vector b(n);
  for (auto& v : b) v = rng.uniform(-1, 1);

  Vector x0, x1;
  const IterativeResult plain = bicgstab(a, b, x0, nullptr, 1e-10, 2000);
  const Ilu0 precond(a);
  const IterativeResult pc = bicgstab(a, b, x1, &precond, 1e-10, 2000);
  ASSERT_TRUE(plain.converged);
  ASSERT_TRUE(pc.converged);
  EXPECT_LT(pc.iterations, plain.iterations);
  EXPECT_LT(norm_inf(sub(a.multiply(x1), b)), 1e-7);
}

TEST(Sparse, AtBinarySearchWideRow) {
  // at() binary-searches within the row; exercise first/last/interior hits
  // and misses on both sides and between present columns.
  const std::size_t n = 64;
  SparseBuilder sb(1, n);
  for (std::size_t c = 1; c < n; c += 2) sb.add(0, c, double(c));
  const SparseMatrix m(sb);
  EXPECT_DOUBLE_EQ(m.at(0, 1), 1.0);       // first stored column
  EXPECT_DOUBLE_EQ(m.at(0, 33), 33.0);     // interior
  EXPECT_DOUBLE_EQ(m.at(0, 63), 63.0);     // last stored column
  EXPECT_DOUBLE_EQ(m.at(0, 0), 0.0);       // before the first
  EXPECT_DOUBLE_EQ(m.at(0, 32), 0.0);      // gap between stored columns
}

TEST(Sparse, PatternOrderedBuilderMatchesShuffled) {
  // The CSR constructor skips its sort when the builder emitted entries in
  // pattern order; the result must be identical to a shuffled emission.
  const std::size_t n = 12;
  SparseBuilder ordered(n, n), shuffled(n, n);
  for (std::size_t r = 0; r < n; ++r) {
    ordered.add(r, r > 0 ? r - 1 : r, 1.0);
    ordered.add(r, r, 4.0 + double(r));
    if (r + 2 < n) ordered.add(r, r + 2, -2.0);
  }
  for (std::size_t r = n; r-- > 0;) {
    if (r + 2 < n) shuffled.add(r, r + 2, -2.0);
    shuffled.add(r, r, 4.0 + double(r));
    shuffled.add(r, r > 0 ? r - 1 : r, 1.0);
  }
  const SparseMatrix a(ordered), b(shuffled);
  ASSERT_EQ(a.num_nonzeros(), b.num_nonzeros());
  for (std::size_t r = 0; r < n; ++r)
    for (std::size_t c = 0; c < n; ++c)
      EXPECT_DOUBLE_EQ(a.at(r, c), b.at(r, c)) << r << "," << c;
}

TEST(Sparse, IndexChecks) {
  SparseBuilder sb(2, 2);
  EXPECT_THROW(sb.add(2, 0, 1.0), mivtx::Error);
  sb.add(0, 0, 1.0);
  sb.add(1, 1, 1.0);
  const SparseMatrix m(sb);
  EXPECT_THROW(m.at(2, 0), mivtx::Error);
  EXPECT_THROW(m.multiply(Vector{1.0}), mivtx::Error);
}

}  // namespace
}  // namespace mivtx::linalg
