// Iterative (Krylov) tier: CG/BiCGStab vs direct LU, ILU(0)/Jacobi
// preconditioners, breakdown handling, and the SolverWorkspace crossover.
#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <vector>

#include "linalg/dense.h"
#include "linalg/krylov.h"
#include "linalg/vector_ops.h"
#include "spice/circuit.h"
#include "spice/dcop.h"
#include "spice/mna.h"
#include "spice/solver_workspace.h"

namespace mivtx::linalg {
namespace {

struct Csr {
  std::size_t n = 0;
  std::vector<std::size_t> row_ptr, col_idx;
  std::vector<double> values;
  CsrView view() const { return {n, &row_ptr, &col_idx, &values}; }
};

Csr from_dense(const DenseMatrix& a) {
  Csr m;
  m.n = a.rows();
  m.row_ptr.push_back(0);
  for (std::size_t r = 0; r < m.n; ++r) {
    for (std::size_t c = 0; c < m.n; ++c) {
      if (a(r, c) != 0.0) {
        m.col_idx.push_back(c);
        m.values.push_back(a(r, c));
      }
    }
    m.row_ptr.push_back(m.col_idx.size());
  }
  return m;
}

// 2D Laplacian (5-point stencil) on a k x k grid: SPD, the power-grid
// Jacobian's structure.
DenseMatrix laplacian2d(std::size_t k) {
  const std::size_t n = k * k;
  DenseMatrix a(n, n);
  for (std::size_t r = 0; r < k; ++r) {
    for (std::size_t c = 0; c < k; ++c) {
      const std::size_t i = r * k + c;
      a(i, i) = 4.0;
      if (c + 1 < k) a(i, i + 1) = a(i + 1, i) = -1.0;
      if (r + 1 < k) a(i, i + k) = a(i + k, i) = -1.0;
    }
  }
  return a;
}

// Nonsymmetric convection-diffusion stencil: general-MNA stand-in.
DenseMatrix convection2d(std::size_t k) {
  DenseMatrix a = laplacian2d(k);
  const std::size_t n = k * k;
  for (std::size_t i = 0; i < n; ++i) {
    if (i + 1 < n && a(i, i + 1) != 0.0) {
      a(i, i + 1) += 0.6;  // upwind bias breaks symmetry
      a(i + 1, i) -= 0.4;
    }
  }
  return a;
}

Vector rhs_for(std::size_t n) {
  Vector b(n);
  for (std::size_t i = 0; i < n; ++i)
    b[i] = std::sin(0.7 * static_cast<double>(i) + 0.3);
  return b;
}

double max_err(const Vector& a, const Vector& b) {
  double m = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i)
    m = std::max(m, std::fabs(a[i] - b[i]));
  return m;
}

TEST(Krylov, CsrMatvecMatchesDense) {
  const DenseMatrix a = convection2d(4);
  const Csr m = from_dense(a);
  const Vector x = rhs_for(m.n);
  Vector y(m.n, 0.0);
  csr_matvec(m.view(), x, y);
  for (std::size_t r = 0; r < m.n; ++r) {
    double acc = 0.0;
    for (std::size_t c = 0; c < m.n; ++c) acc += a(r, c) * x[c];
    EXPECT_NEAR(y[r], acc, 1e-14);
  }
}

TEST(Krylov, CgMatchesDenseLuOnSpdSystem) {
  const DenseMatrix a = laplacian2d(7);
  const Csr m = from_dense(a);
  const Vector b = rhs_for(m.n);
  const Vector exact = solve_dense(a, b);

  Ilu0Preconditioner ilu;
  ilu.analyze(m.n, m.row_ptr, m.col_idx);
  ASSERT_TRUE(ilu.factorize(m.values));

  KrylovSolver solver;
  Vector x(m.n, 0.0);
  IterativeOptions opts;
  opts.rtol = 1e-12;
  const IterativeResult res = solver.cg(m.view(), &ilu, b, x, opts);
  EXPECT_TRUE(res.ok()) << to_string(res.outcome);
  EXPECT_LE(max_err(x, exact), 1e-9);
}

TEST(Krylov, BicgstabMatchesDenseLuOnNonsymmetricSystem) {
  const DenseMatrix a = convection2d(7);
  const Csr m = from_dense(a);
  const Vector b = rhs_for(m.n);
  const Vector exact = solve_dense(a, b);

  Ilu0Preconditioner ilu;
  ilu.analyze(m.n, m.row_ptr, m.col_idx);
  ASSERT_TRUE(ilu.factorize(m.values));

  KrylovSolver solver;
  Vector x(m.n, 0.0);
  IterativeOptions opts;
  opts.rtol = 1e-12;
  const IterativeResult res = solver.bicgstab(m.view(), &ilu, b, x, opts);
  EXPECT_TRUE(res.ok()) << to_string(res.outcome);
  EXPECT_LE(max_err(x, exact), 1e-9);
}

TEST(Krylov, Ilu0IsExactOnTridiagonalPattern) {
  // A tridiagonal matrix factors with zero fill, so ILU(0) equals the
  // exact LU and a single preconditioner application solves the system.
  const std::size_t n = 40;
  DenseMatrix a(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    a(i, i) = 2.5;
    if (i + 1 < n) {
      a(i, i + 1) = -1.0;
      a(i + 1, i) = -0.8;
    }
  }
  const Csr m = from_dense(a);
  const Vector b = rhs_for(n);
  const Vector exact = solve_dense(a, b);

  Ilu0Preconditioner ilu;
  ilu.analyze(n, m.row_ptr, m.col_idx);
  ASSERT_TRUE(ilu.factorize(m.values));
  Vector z(n, 0.0);
  ilu.apply(b, z);
  EXPECT_LE(max_err(z, exact), 1e-10);
}

TEST(Krylov, Ilu0BeatsJacobiOnIterationCount) {
  const DenseMatrix a = laplacian2d(10);
  const Csr m = from_dense(a);
  const Vector b = rhs_for(m.n);

  Ilu0Preconditioner ilu;
  ilu.analyze(m.n, m.row_ptr, m.col_idx);
  ASSERT_TRUE(ilu.factorize(m.values));
  JacobiPreconditioner jacobi;
  jacobi.analyze(m.n, m.row_ptr, m.col_idx);
  ASSERT_TRUE(jacobi.factorize(m.values));

  KrylovSolver solver;
  IterativeOptions opts;
  opts.rtol = 1e-10;
  Vector x_ilu(m.n, 0.0), x_jac(m.n, 0.0);
  const IterativeResult r_ilu = solver.cg(m.view(), &ilu, b, x_ilu, opts);
  const IterativeResult r_jac = solver.cg(m.view(), &jacobi, b, x_jac, opts);
  ASSERT_TRUE(r_ilu.ok());
  ASSERT_TRUE(r_jac.ok());
  // The whole point of ILU(0): strictly fewer iterations than diagonal
  // scaling on a mesh Laplacian.
  EXPECT_LT(r_ilu.iterations, r_jac.iterations);
  EXPECT_LE(max_err(x_ilu, x_jac), 1e-8);
}

TEST(Krylov, JacobiDegradesMissingDiagonalToIdentity) {
  // Row 1 has no diagonal entry at all (an MNA branch row shape).
  Csr m;
  m.n = 2;
  m.row_ptr = {0, 2, 3};
  m.col_idx = {0, 1, 0};
  m.values = {2.0, 1.0, 1.0};
  JacobiPreconditioner jacobi;
  jacobi.analyze(m.n, m.row_ptr, m.col_idx);
  ASSERT_TRUE(jacobi.factorize(m.values));
  Vector z(2, 0.0);
  jacobi.apply(Vector{4.0, 3.0}, z);
  EXPECT_DOUBLE_EQ(z[0], 2.0);  // scaled by 1/2
  EXPECT_DOUBLE_EQ(z[1], 3.0);  // identity pass-through
}

TEST(Krylov, Ilu0HandlesZeroDiagonalBranchRows) {
  // MNA shape of an ideal V source between nodes 1 and ground plus two
  // resistors: the branch row/column diagonal is structurally zero, which
  // is exactly why the ILU(0) pattern must include the full diagonal.
  //   [ g1+g2  -g2    1 ] [v1]   [0]
  //   [ -g2     g2    0 ] [v2] = [0]
  //   [ 1       0     0 ] [ib]   [V]
  DenseMatrix a(3, 3);
  const double g1 = 1e-3, g2 = 2e-3;
  a(0, 0) = g1 + g2;
  a(0, 1) = -g2;
  a(0, 2) = 1.0;
  a(1, 0) = -g2;
  a(1, 1) = g2;
  a(2, 0) = 1.0;
  const Csr m = from_dense(a);
  const Vector b{0.0, 0.0, 1.5};
  const Vector exact = solve_dense(a, b);

  Ilu0Preconditioner ilu;
  ilu.analyze(m.n, m.row_ptr, m.col_idx);
  ASSERT_TRUE(ilu.factorize(m.values));
  KrylovSolver solver;
  Vector x(3, 0.0);
  IterativeOptions opts;
  opts.rtol = 1e-13;
  const IterativeResult res = solver.bicgstab(m.view(), &ilu, b, x, opts);
  EXPECT_TRUE(res.ok()) << to_string(res.outcome);
  EXPECT_LE(max_err(x, exact), 1e-9);
}

TEST(Krylov, CgReportsBreakdownOnIndefiniteSystem) {
  // Symmetric but indefinite: p'Ap goes nonpositive and CG must say so
  // instead of returning garbage.
  DenseMatrix a(2, 2);
  a(0, 0) = 1.0;
  a(1, 1) = -1.0;
  const Csr m = from_dense(a);
  KrylovSolver solver;
  Vector x(2, 0.0);
  const IterativeResult res = solver.cg(m.view(), nullptr, Vector{0.0, 1.0}, x);
  EXPECT_EQ(res.outcome, IterativeOutcome::kBreakdown);
}

TEST(Krylov, ZeroRhsConvergesImmediately) {
  const DenseMatrix a = laplacian2d(3);
  const Csr m = from_dense(a);
  KrylovSolver solver;
  Vector x(m.n, 1.0);
  const IterativeResult res =
      solver.cg(m.view(), nullptr, Vector(m.n, 0.0), x);
  EXPECT_TRUE(res.ok());
  EXPECT_EQ(res.iterations, 0);
  for (double v : x) EXPECT_EQ(v, 0.0);
}

}  // namespace
}  // namespace mivtx::linalg

namespace mivtx::spice {
namespace {

// Resistor ladder with a drive source: linear, so one Newton iteration is
// one linear solve and the workspace stats are easy to reason about.
Circuit ladder_circuit(std::size_t sections) {
  Circuit ckt;
  ckt.add_vsource("VIN", ckt.node("n0"), kGround, SourceSpec::DC(1.0));
  for (std::size_t i = 0; i < sections; ++i) {
    const NodeId a = ckt.node("n" + std::to_string(i));
    const NodeId b = ckt.node("n" + std::to_string(i + 1));
    ckt.add_resistor("Rs" + std::to_string(i), a, b, 10.0);
    ckt.add_resistor("Rg" + std::to_string(i), b, kGround, 1e3);
  }
  return ckt;
}

TEST(KrylovWorkspace, PinnedBicgstabSolvesIteratively) {
  const Circuit ckt = ladder_circuit(64);
  NewtonOptions opts;
  opts.backend = SolverBackend::kSparse;
  opts.linear_solver = LinearSolver::kBicgstab;
  SolverWorkspace ws(ckt, opts);
  EXPECT_TRUE(ws.iterative_tier());
  EXPECT_TRUE(ws.iterative_active());
  const DcResult dc = dc_operating_point(ckt, opts, ws);
  ASSERT_TRUE(dc.converged);
  const SolverStats stats = ws.stats_snapshot();
  EXPECT_GT(stats.iterative_solves, 0u);
  EXPECT_GT(stats.precond_factorizations, 0u);
  EXPECT_EQ(stats.iterative_fallbacks, 0u);
  // Agreement with a plain direct solve.
  NewtonOptions direct = opts;
  direct.linear_solver = LinearSolver::kDirect;
  const DcResult ref = dc_operating_point(ckt, direct);
  ASSERT_TRUE(ref.converged);
  for (std::size_t i = 0; i < ref.x.size(); ++i)
    EXPECT_NEAR(dc.x[i], ref.x[i], 1e-9);
}

TEST(KrylovWorkspace, AutoCrossoverForcedByThresholds) {
  const Circuit ckt = ladder_circuit(32);
  NewtonOptions opts;
  opts.backend = SolverBackend::kSparse;
  opts.linear_solver = LinearSolver::kAuto;
  // Default thresholds: way below the crossover, the tier must stay off.
  {
    SolverWorkspace ws(ckt, opts);
    EXPECT_FALSE(ws.iterative_tier());
  }
  // Forced low threshold: the same circuit goes iterative.
  opts.iterative_min_unknowns = 16;
  {
    SolverWorkspace ws(ckt, opts);
    EXPECT_TRUE(ws.iterative_tier());
    const DcResult dc = dc_operating_point(ckt, opts, ws);
    ASSERT_TRUE(dc.converged);
    EXPECT_GT(ws.stats_snapshot().iterative_solves, 0u);
  }
  // Fill-ratio band: force the band to cover this size with an impossible
  // ratio -> stays direct; with a free ratio -> iterative.
  opts.iterative_min_unknowns = 100000;
  opts.iterative_fill_min_unknowns = 16;
  opts.iterative_fill_ratio = 1e9;
  {
    SolverWorkspace ws(ckt, opts);
    EXPECT_FALSE(ws.iterative_tier());
  }
  opts.iterative_fill_ratio = 0.0;
  {
    SolverWorkspace ws(ckt, opts);
    EXPECT_TRUE(ws.iterative_tier());
  }
}

TEST(KrylovWorkspace, BudgetMissFallsBackToDirectLadder) {
  const Circuit ckt = ladder_circuit(64);
  NewtonOptions opts;
  opts.backend = SolverBackend::kSparse;
  opts.linear_solver = LinearSolver::kBicgstab;
  // A one-iteration budget cannot converge; every solve must reroute to
  // the direct ladder and still produce the right answer.
  opts.iterative_max_iterations = 1;
  SolverWorkspace ws(ckt, opts);
  const DcResult dc = dc_operating_point(ckt, opts, ws);
  ASSERT_TRUE(dc.converged);
  const SolverStats stats = ws.stats_snapshot();
  EXPECT_EQ(stats.iterative_solves, 0u);
  EXPECT_GT(stats.iterative_fallbacks, 0u);
  EXPECT_EQ(stats.last_fallback, IterativeFallback::kMaxIterations);
  EXPECT_FALSE(ws.iterative_active());  // sticky after repeated failures

  const DcResult ref = dc_operating_point(ckt, NewtonOptions{});
  ASSERT_TRUE(ref.converged);
  for (std::size_t i = 0; i < ref.x.size(); ++i)
    EXPECT_NEAR(dc.x[i], ref.x[i], 1e-9);
}

}  // namespace
}  // namespace mivtx::spice
