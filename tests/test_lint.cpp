// mivtx::lint: diagnostics core, circuit/netlist rules, cell/layout rules,
// and the pre-solve gates in dcop/transient and the PPA engine.
//
// Every rule has at least one positive (clean input stays clean) and one
// negative (violating input fires exactly that rule) case.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "cells/netgen.h"
#include "cells/topology.h"
#include "common/error.h"
#include "core/ppa.h"
#include "core/reference_cards.h"
#include "layout/cell_layout.h"
#include "lint/cell_rules.h"
#include "lint/circuit_rules.h"
#include "lint/diagnostics.h"
#include "lint/presolve.h"
#include "spice/dcop.h"
#include "spice/parser.h"
#include "spice/transient.h"

namespace mivtx::lint {
namespace {

using spice::Circuit;
using spice::kGround;
using spice::NodeId;
using spice::SourceSpec;

std::size_t count_rule(const std::vector<Diagnostic>& diags,
                       const std::string& rule) {
  std::size_t n = 0;
  for (const Diagnostic& d : diags) {
    if (d.rule == rule) ++n;
  }
  return n;
}

bool has_rule(const DiagnosticSink& sink, const std::string& rule) {
  return count_rule(sink.diagnostics(), rule) > 0;
}

// V1 drives a grounded R divider: structurally clean by every rule.
Circuit clean_divider() {
  Circuit ckt;
  const NodeId in = ckt.node("in");
  const NodeId mid = ckt.node("mid");
  ckt.add_vsource("V1", in, kGround, SourceSpec::DC(1.0));
  ckt.add_resistor("R1", in, mid, 1e3);
  ckt.add_resistor("R2", mid, kGround, 1e3);
  return ckt;
}

bsimsoi::SoiModelCard test_nmos_card() {
  return core::reference_model_library().card(core::Variant::kTraditional,
                                              core::Polarity::kNmos);
}

cells::ModelSet test_models(cells::Implementation impl) {
  core::PpaEngine engine(core::reference_model_library());
  return engine.model_set(impl);
}

// ---------------------------------------------------------------------------
// Diagnostics core

TEST(Diagnostics, SinkCountsBySeverity) {
  DiagnosticSink sink;
  EXPECT_FALSE(sink.has_errors());
  sink.error("rule-a", "first");
  sink.warning("rule-b", "second");
  sink.info("rule-c", "third");
  EXPECT_EQ(sink.num_errors(), 1u);
  EXPECT_EQ(sink.num_warnings(), 1u);
  EXPECT_TRUE(sink.has_errors());
  EXPECT_EQ(sink.diagnostics().size(), 3u);
}

TEST(Diagnostics, SuppressDropsAndDowngradeDemotes) {
  DiagnosticSink sink;
  sink.suppress("rule-a");
  sink.downgrade("rule-b");
  sink.error("rule-a", "dropped entirely");
  sink.error("rule-b", "demoted to warning");
  sink.error("rule-c", "stays an error");
  EXPECT_EQ(sink.diagnostics().size(), 2u);
  EXPECT_EQ(sink.num_errors(), 1u);
  EXPECT_EQ(sink.num_warnings(), 1u);
  EXPECT_FALSE(has_rule(sink, "rule-a"));
}

TEST(Diagnostics, TextRenderingShowsSeverityRuleAndAnchors) {
  DiagnosticSink sink;
  sink.error("no-dc-path", "node floats", "C1", "x", 7);
  const std::string text = sink.render_text();
  EXPECT_NE(text.find("error[no-dc-path]"), std::string::npos);
  EXPECT_NE(text.find("C1"), std::string::npos);
  EXPECT_NE(text.find("node 'x'"), std::string::npos);
  EXPECT_NE(text.find("line 7"), std::string::npos);
}

TEST(Diagnostics, JsonRenderingIsWellFormedAndEscaped) {
  DiagnosticSink sink;
  sink.error("rule-a", "quote \" backslash \\ newline \n done", "E1", "n1", 3);
  sink.warning("rule-b", "plain");
  const std::string json = sink.render_json();
  EXPECT_NE(json.find("\"errors\":1"), std::string::npos);
  EXPECT_NE(json.find("\"warnings\":1"), std::string::npos);
  EXPECT_NE(json.find("\"rule\":\"rule-a\""), std::string::npos);
  EXPECT_NE(json.find("\\\" backslash \\\\ newline \\n"), std::string::npos);
  EXPECT_NE(json.find("\"line\":3"), std::string::npos);
  EXPECT_EQ(json.find('\n'), std::string::npos);  // single-line document
}

// ---------------------------------------------------------------------------
// Pre-solve solvability rules

TEST(PresolveLint, CleanDividerPasses) {
  DiagnosticSink sink;
  EXPECT_EQ(check_solvable(clean_divider(), sink), 0u);
  EXPECT_TRUE(sink.diagnostics().empty());
}

TEST(PresolveLint, NoGround) {
  Circuit ckt;
  ckt.add_vsource("V1", ckt.node("a"), ckt.node("b"), SourceSpec::DC(1.0));
  ckt.add_resistor("R1", ckt.node("a"), ckt.node("b"), 1e3);
  DiagnosticSink sink;
  EXPECT_GT(check_solvable(ckt, sink), 0u);
  EXPECT_TRUE(has_rule(sink, "no-ground"));
}

TEST(PresolveLint, NoDcPathOnCapacitorOnlyNode) {
  Circuit ckt;
  const NodeId in = ckt.node("in");
  const NodeId x = ckt.node("x");
  ckt.add_vsource("V1", in, kGround, SourceSpec::DC(1.0));
  ckt.add_capacitor("C1", in, x, 1e-15);
  ckt.add_capacitor("C2", x, kGround, 1e-15);
  DiagnosticSink sink;
  EXPECT_EQ(check_solvable(ckt, sink), 1u);
  EXPECT_TRUE(has_rule(sink, "no-dc-path"));
  EXPECT_EQ(sink.diagnostics()[0].node, "x");

  // A DC leak resistor across C2 restores solvability.
  ckt.add_resistor("Rleak", x, kGround, 1e9);
  DiagnosticSink clean;
  EXPECT_EQ(check_solvable(ckt, clean), 0u);
}

TEST(PresolveLint, IsourceCutset) {
  Circuit ckt;
  const NodeId a = ckt.node("a");
  const NodeId b = ckt.node("b");
  ckt.add_resistor("R1", a, kGround, 1e3);
  ckt.add_isource("I1", a, b, SourceSpec::DC(1e-3));
  DiagnosticSink sink;
  EXPECT_EQ(check_solvable(ckt, sink), 1u);
  EXPECT_TRUE(has_rule(sink, "isource-cutset"));

  ckt.add_resistor("R2", b, kGround, 1e3);
  DiagnosticSink clean;
  EXPECT_EQ(check_solvable(ckt, clean), 0u);
}

TEST(PresolveLint, VsourceShorted) {
  Circuit ckt;
  const NodeId a = ckt.node("a");
  ckt.add_resistor("R1", a, kGround, 1e3);
  ckt.add_vsource("V1", a, a, SourceSpec::DC(0.5));
  DiagnosticSink sink;
  EXPECT_GT(check_solvable(ckt, sink), 0u);
  EXPECT_TRUE(has_rule(sink, "vsource-shorted"));
  EXPECT_EQ(sink.diagnostics()[0].element, "V1");
}

TEST(PresolveLint, VsourceLoop) {
  Circuit ckt;
  const NodeId a = ckt.node("a");
  ckt.add_vsource("V1", a, kGround, SourceSpec::DC(1.0));
  ckt.add_vsource("V2", a, kGround, SourceSpec::DC(2.0));
  ckt.add_resistor("R1", a, kGround, 1e3);
  DiagnosticSink sink;
  EXPECT_EQ(check_solvable(ckt, sink), 1u);
  EXPECT_TRUE(has_rule(sink, "vsource-loop"));
}

TEST(PresolveLint, VcvsClosesVsourceLoop) {
  Circuit ckt;
  const NodeId a = ckt.node("a");
  const NodeId c = ckt.node("c");
  ckt.add_vsource("V1", a, kGround, SourceSpec::DC(1.0));
  ckt.add_vcvs("E1", a, kGround, c, kGround, 2.0);
  ckt.add_resistor("R1", c, kGround, 1e3);
  DiagnosticSink sink;
  EXPECT_EQ(check_solvable(ckt, sink), 1u);
  EXPECT_TRUE(has_rule(sink, "vsource-loop"));
}

TEST(PresolveLint, InductorLoop) {
  Circuit ckt;
  const NodeId a = ckt.node("a");
  ckt.add_vsource("V1", a, kGround, SourceSpec::DC(1.0));
  ckt.add_inductor("L1", a, kGround, 1e-6);  // shorts the source at DC
  DiagnosticSink sink;
  EXPECT_EQ(check_solvable(ckt, sink), 1u);
  EXPECT_TRUE(has_rule(sink, "inductor-loop"));

  // Series R-L to ground is the well-posed form.
  Circuit ok;
  const NodeId in = ok.node("in");
  const NodeId mid = ok.node("mid");
  ok.add_vsource("V1", in, kGround, SourceSpec::DC(1.0));
  ok.add_resistor("R1", in, mid, 50.0);
  ok.add_inductor("L1", mid, kGround, 1e-6);
  DiagnosticSink clean;
  EXPECT_EQ(check_solvable(ok, clean), 0u);
}

TEST(PresolveLint, NonpositiveValueAfterMutation) {
  Circuit ckt = clean_divider();
  ckt.elements()[1].value = -5.0;  // R1, mutated post-construction
  DiagnosticSink sink;
  EXPECT_EQ(check_solvable(ckt, sink), 1u);
  EXPECT_TRUE(has_rule(sink, "nonpositive-value"));
  EXPECT_EQ(sink.diagnostics()[0].element, "R1");
}

// ---------------------------------------------------------------------------
// Full circuit rules

TEST(CircuitLint, DanglingNode) {
  Circuit ckt = clean_divider();
  ckt.add_resistor("R3", ckt.node("mid"), ckt.node("stub"), 1e3);
  DiagnosticSink sink;
  EXPECT_EQ(lint_circuit(ckt, sink), 0u);  // warning, not error
  EXPECT_TRUE(has_rule(sink, "dangling-node"));
  EXPECT_EQ(sink.num_warnings(), 1u);

  DiagnosticSink clean;
  lint_circuit(clean_divider(), clean);
  EXPECT_TRUE(clean.diagnostics().empty());
}

TEST(CircuitLint, MosShorted) {
  Circuit ckt = clean_divider();
  ckt.add_mosfet("M1", ckt.node("mid"), ckt.node("in"), ckt.node("mid"),
                 test_nmos_card());
  DiagnosticSink sink;
  lint_circuit(ckt, sink);
  EXPECT_TRUE(has_rule(sink, "mos-shorted"));
}

TEST(CircuitLint, MosAllGround) {
  Circuit ckt = clean_divider();
  ckt.add_mosfet("M1", kGround, kGround, kGround, test_nmos_card());
  DiagnosticSink sink;
  lint_circuit(ckt, sink);
  EXPECT_TRUE(has_rule(sink, "mos-all-ground"));
  EXPECT_FALSE(has_rule(sink, "mos-shorted"));
}

TEST(CircuitLint, SolvabilityRulesCanBeSkipped) {
  Circuit ckt;
  ckt.add_vsource("V1", ckt.node("a"), ckt.node("a"), SourceSpec::DC(1.0));
  ckt.add_resistor("R1", ckt.node("a"), kGround, 1e3);
  CircuitLintOptions opts;
  opts.solvability = false;
  DiagnosticSink sink;
  EXPECT_EQ(lint_circuit(ckt, sink, opts), 0u);
  EXPECT_FALSE(has_rule(sink, "vsource-shorted"));
}

// ---------------------------------------------------------------------------
// Netlist-level lint (parser integration)

TEST(NetlistLint, AttachesLineNumbers) {
  const auto parsed = spice::parse_netlist(
      "line number demo\n"
      "V1 a 0 DC 1\n"
      "R1 a b 1k\n"
      ".end\n");
  DiagnosticSink sink;
  lint_netlist(parsed, sink);
  ASSERT_TRUE(has_rule(sink, "dangling-node"));
  for (const Diagnostic& d : sink.diagnostics()) {
    if (d.rule == "dangling-node") {
      EXPECT_EQ(d.element, "R1");
      EXPECT_EQ(d.line, 3);
    }
  }
}

TEST(NetlistLint, UnreferencedModel) {
  const auto parsed = spice::parse_netlist(
      "unused model card\n"
      ".model nch nmos LEVEL=70 VTH0=0.35 L=24n W=192n U0=0.03\n"
      ".model pch pmos LEVEL=70 VTH0=-0.35 L=24n W=192n U0=0.012\n"
      "VDD d 0 DC 1\n"
      "M1 d g 0 nch\n"
      "Rg g 0 1k\n"
      ".end\n");
  DiagnosticSink sink;
  lint_netlist(parsed, sink);
  ASSERT_EQ(count_rule(sink.diagnostics(), "unreferenced-model"), 1u);
  for (const Diagnostic& d : sink.diagnostics()) {
    if (d.rule == "unreferenced-model") {
      EXPECT_NE(d.message.find("pch"), std::string::npos);
      EXPECT_EQ(d.line, 3);
    }
  }
}

TEST(NetlistLint, BrokenNetlistYieldsExactRuleIds) {
  // Floating MOSFET gate (capacitor-only) + shorted V-source: the two
  // canonical input corruptions of the ISSUE acceptance criteria.
  const auto parsed = spice::parse_netlist(
      "deliberately broken\n"
      ".model nch nmos LEVEL=70 VTH0=0.35 L=24n W=192n U0=0.03\n"
      "VDD vdd 0 DC 1.0\n"
      "VS 0 0 DC 0.5\n"
      "M1 out g 0 nch\n"
      "Cg g 0 1f\n"
      "Rl vdd out 10k\n"
      ".end\n");
  DiagnosticSink sink;
  lint_netlist(parsed, sink);
  EXPECT_EQ(sink.num_errors(), 2u);
  EXPECT_EQ(count_rule(sink.diagnostics(), "vsource-shorted"), 1u);
  EXPECT_EQ(count_rule(sink.diagnostics(), "no-dc-path"), 1u);

  const std::string json = sink.render_json();
  EXPECT_NE(json.find("\"errors\":2"), std::string::npos);
  EXPECT_NE(json.find("\"rule\":\"vsource-shorted\""), std::string::npos);
  EXPECT_NE(json.find("\"rule\":\"no-dc-path\""), std::string::npos);
}

TEST(Parser, RejectsDuplicateElementWithBothLines) {
  try {
    spice::parse_netlist("t\nR1 a 0 1k\nR1 a 0 2k\n.end\n");
    FAIL() << "duplicate element accepted";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("netlist line 3"), std::string::npos);
    EXPECT_NE(what.find("duplicate element 'R1'"), std::string::npos);
    EXPECT_NE(what.find("line 2"), std::string::npos);
  }
  // Same name with different element type is still a duplicate; case folds.
  EXPECT_THROW(spice::parse_netlist("t\nV1 a 0 1\nv1 b 0 2\n.end\n"), Error);
}

TEST(Parser, RejectsDuplicateModelWithBothLines) {
  try {
    spice::parse_netlist(
        "t\n"
        ".model nch nmos LEVEL=70 VTH0=0.35 L=24n W=192n U0=0.03\n"
        ".model nch nmos LEVEL=70 VTH0=0.40 L=24n W=192n U0=0.03\n"
        ".end\n");
    FAIL() << "duplicate model accepted";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("netlist line 3"), std::string::npos);
    EXPECT_NE(what.find("duplicate model 'nch'"), std::string::npos);
    EXPECT_NE(what.find("line 2"), std::string::npos);
  }
}

TEST(Parser, ValueErrorsCarryNetlistLine) {
  try {
    spice::parse_netlist("t\nV1 a 0 1\nR1 a 0 -5\n.end\n");
    FAIL() << "nonpositive resistor accepted";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("netlist line 3"),
              std::string::npos);
  }
}

// ---------------------------------------------------------------------------
// Solver gates

TEST(SolverGate, DcopFailsFastOnCapacitorOnlyNode) {
  Circuit ckt;
  const NodeId in = ckt.node("in");
  const NodeId x = ckt.node("x");
  ckt.add_vsource("V1", in, kGround, SourceSpec::DC(1.0));
  ckt.add_capacitor("C1", in, x, 1e-15);
  ckt.add_capacitor("C2", x, kGround, 1e-15);

  const spice::DcResult gated = spice::dc_operating_point(ckt);
  EXPECT_FALSE(gated.converged);
  EXPECT_EQ(gated.strategy, "lint");
  ASSERT_FALSE(gated.lint.empty());
  EXPECT_EQ(gated.lint[0].rule, "no-dc-path");
  EXPECT_EQ(gated.total_iterations, 0);  // no Newton work was spent

  // Opt-out: the numeric path (capacitor leak stamp) takes over.
  spice::NewtonOptions opts;
  opts.presolve_lint = false;
  const spice::DcResult raw = spice::dc_operating_point(ckt, opts);
  EXPECT_NE(raw.strategy, "lint");
  EXPECT_TRUE(raw.lint.empty());
}

TEST(SolverGate, DcopPassesCleanCircuitsThrough) {
  const spice::DcResult r = spice::dc_operating_point(clean_divider());
  ASSERT_TRUE(r.converged);
  EXPECT_EQ(r.strategy, "newton");
  EXPECT_TRUE(r.lint.empty());
}

TEST(SolverGate, TransientFailsFastWithDiagnostics) {
  Circuit ckt;
  const NodeId in = ckt.node("in");
  const NodeId x = ckt.node("x");
  ckt.add_vsource("V1", in, kGround, SourceSpec::DC(1.0));
  ckt.add_capacitor("C1", in, x, 1e-15);
  ckt.add_capacitor("C2", x, kGround, 1e-15);
  spice::TransientOptions opts;
  opts.t_stop = 1e-10;
  const spice::TransientResult tr = spice::transient(ckt, opts);
  EXPECT_FALSE(tr.ok);
  EXPECT_NE(tr.error.find("pre-solve lint failed"), std::string::npos);
  EXPECT_NE(tr.error.find("no-dc-path"), std::string::npos);
  ASSERT_FALSE(tr.lint.empty());
  EXPECT_EQ(tr.lint[0].rule, "no-dc-path");
  EXPECT_EQ(tr.accepted_steps, 0u);
}

TEST(SolverGate, DcSweepRejectsVsourceLoop) {
  Circuit ckt;
  const NodeId a = ckt.node("a");
  ckt.add_vsource("V1", a, kGround, SourceSpec::DC(1.0));
  ckt.add_vsource("V2", a, kGround, SourceSpec::DC(1.0));
  ckt.add_resistor("R1", a, kGround, 1e3);
  const spice::DcSweepResult sweep =
      spice::dc_sweep(ckt, "V1", {0.0, 0.5, 1.0});
  EXPECT_FALSE(sweep.converged);
  EXPECT_TRUE(sweep.solutions.empty());
  ASSERT_FALSE(sweep.lint.empty());
  EXPECT_EQ(sweep.lint[0].rule, "vsource-loop");
}

// ---------------------------------------------------------------------------
// Cell topology rules

TEST(CellLint, AllFourteenTopologiesAreClean) {
  for (cells::CellType type : cells::all_cells()) {
    DiagnosticSink sink;
    EXPECT_EQ(lint_topology(cells::cell_topology(type), sink), 0u)
        << cells::cell_name(type) << "\n"
        << sink.render_text();
    EXPECT_TRUE(sink.diagnostics().empty());
  }
}

TEST(CellLint, FloatingInput) {
  cells::CellTopology topo;
  topo.type = cells::CellType::kInv1;
  topo.inputs = {"A", "B"};  // B drives nothing
  topo.output = "Y";
  topo.fets.push_back({true, "Y", "A", "vdd"});
  topo.fets.push_back({false, "Y", "A", "gnd"});
  DiagnosticSink sink;
  EXPECT_EQ(lint_topology(topo, sink), 1u);
  EXPECT_TRUE(has_rule(sink, "cell-floating-input"));
}

TEST(CellLint, DisconnectedInput) {
  cells::CellTopology topo;
  topo.type = cells::CellType::kInv1;
  topo.inputs = {"A", "B"};
  topo.output = "Y";
  topo.fets.push_back({true, "Y", "A", "vdd"});
  topo.fets.push_back({false, "Y", "A", "gnd"});
  // B gates an island between two internal nets that never reach Y.
  topo.fets.push_back({false, "x1", "B", "x2"});
  DiagnosticSink sink;
  EXPECT_EQ(lint_topology(topo, sink), 1u);
  EXPECT_TRUE(has_rule(sink, "cell-disconnected"));
}

TEST(CellLint, OutputUnreachable) {
  cells::CellTopology topo;
  topo.type = cells::CellType::kInv1;
  topo.inputs = {"A"};
  topo.output = "Y";
  topo.fets.push_back({false, "Y", "A", "gnd"});  // pull-down only
  DiagnosticSink sink;
  EXPECT_EQ(lint_topology(topo, sink), 1u);
  EXPECT_TRUE(has_rule(sink, "cell-output-unreachable"));
}

// ---------------------------------------------------------------------------
// Layout rules (KOZ et al.)

TEST(LayoutLint, AllGeneratedLayoutsAreClean) {
  const layout::LayoutModel model;
  for (cells::CellType type : cells::all_cells()) {
    for (cells::Implementation impl : cells::all_implementations()) {
      const layout::CellLayout cl = model.layout_cell(type, impl);
      DiagnosticSink sink;
      EXPECT_EQ(lint_layout(cl, model.rules(), sink), 0u)
          << cells::cell_name(type) << "/" << cells::impl_name(impl) << "\n"
          << sink.render_text();
    }
  }
}

TEST(LayoutLint, KozViolationWhenTopTierShrinks) {
  const layout::LayoutModel model;
  layout::CellLayout cl = model.layout_cell(cells::CellType::kNand2,
                                            cells::Implementation::k2D);
  ASSERT_GT(cl.external_mivs, 0);
  // Steal one keep-out square's worth of width: the MIVs no longer fit.
  cl.top.width -= layout::external_miv_width(model.rules());
  DiagnosticSink sink;
  lint_layout(cl, model.rules(), sink);
  EXPECT_TRUE(has_rule(sink, "koz-violation"));
}

TEST(LayoutLint, ExternalMivOnMivTransistorImplementation) {
  const layout::LayoutModel model;
  layout::CellLayout cl = model.layout_cell(
      cells::CellType::kInv1, cells::Implementation::kMiv2Channel);
  cl.external_mivs = 2;  // MIV-transistors pay no keep-out
  DiagnosticSink sink;
  EXPECT_EQ(lint_layout(cl, model.rules(), sink), 1u);
  EXPECT_TRUE(has_rule(sink, "koz-external-miv"));
}

TEST(LayoutLint, NegativeGeometry) {
  const layout::LayoutModel model;
  layout::CellLayout cl = model.layout_cell(cells::CellType::kInv1,
                                            cells::Implementation::k2D);
  cl.bottom.height = -1e-9;
  DiagnosticSink sink;
  lint_layout(cl, model.rules(), sink);
  EXPECT_TRUE(has_rule(sink, "negative-geometry"));
}

TEST(LayoutLint, RailAndMarginOverflow) {
  const layout::LayoutModel model;
  layout::CellLayout cl = model.layout_cell(cells::CellType::kInv1,
                                            cells::Implementation::k2D);
  cl.cell_height -= model.rules().rail_track;
  cl.cell_width -= model.rules().cell_margin;
  DiagnosticSink sink;
  lint_layout(cl, model.rules(), sink);
  EXPECT_TRUE(has_rule(sink, "rail-overflow"));
  EXPECT_TRUE(has_rule(sink, "margin-overflow"));
}

// ---------------------------------------------------------------------------
// Generated cell netlists and the PPA gate

TEST(CellLint, AllGeneratedCellNetlistsLintClean) {
  for (cells::Implementation impl : cells::all_implementations()) {
    const cells::ModelSet models = test_models(impl);
    for (cells::CellType type : cells::all_cells()) {
      const cells::CellNetlist cell =
          cells::build_cell(type, impl, models, cells::ParasiticSpec{}, 1.0);
      DiagnosticSink sink;
      lint_circuit(cell.circuit, sink);
      EXPECT_FALSE(sink.has_errors())
          << cells::cell_name(type) << "/" << cells::impl_name(impl) << "\n"
          << sink.render_text();
      EXPECT_EQ(sink.num_warnings(), 0u)
          << cells::cell_name(type) << "/" << cells::impl_name(impl) << "\n"
          << sink.render_text();
    }
  }
}

TEST(PpaGate, BrokenDesignRulesAreRejectedBeforeSimulation) {
  layout::DesignRules rules;
  rules.device_width = -192e-9;  // corrupt: negative drawn width
  core::PpaOptions opts;
  core::PpaEngine engine(core::reference_model_library(), opts, rules);
  const core::CellPpa ppa =
      engine.measure(cells::CellType::kInv1, cells::Implementation::k2D);
  EXPECT_FALSE(ppa.ok);
  EXPECT_TRUE(ppa.arcs.empty());  // no transient was run
}

}  // namespace
}  // namespace mivtx::lint
