// Row placer: packing legality (no overlaps, inside outline), utilization,
// and the coupled-vs-per-tier area relationship the chip bench relies on.
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"
#include "gatelevel/netlist.h"
#include "place/placer.h"

namespace mivtx::place {
namespace {

bool overlaps(const PlacedCell& a, const PlacedCell& b) {
  const double eps = 1e-15;
  return a.x < b.x + b.width - eps && b.x < a.x + a.width - eps &&
         a.y < b.y + b.height - eps && b.y < a.y + a.height - eps;
}

void check_legal(const TierPlacement& t) {
  for (std::size_t i = 0; i < t.cells.size(); ++i) {
    const PlacedCell& a = t.cells[i];
    EXPECT_GE(a.x, -1e-15);
    EXPECT_GE(a.y, -1e-15);
    EXPECT_LE(a.x + a.width, t.width + 1e-12);
    EXPECT_LE(a.y + a.height, t.height + 1e-12);
    for (std::size_t j = i + 1; j < t.cells.size(); ++j) {
      EXPECT_FALSE(overlaps(a, t.cells[j]))
          << a.instance << " overlaps " << t.cells[j].instance;
    }
  }
}

TEST(Placer, CoupledPlacementLegalForAllImpls) {
  const gatelevel::GateNetlist ckt = gatelevel::ripple_carry_adder(4);
  const Placer placer;
  for (cells::Implementation impl : cells::all_implementations()) {
    const Placement p = placer.place(ckt, impl, Mode::kCoupled);
    EXPECT_EQ(p.coupled.cells.size(), ckt.instances().size());
    check_legal(p.coupled);
    EXPECT_GT(p.coupled.utilization(), 0.5);
    EXPECT_LE(p.coupled.utilization(), 1.0 + 1e-9);
  }
}

TEST(Placer, PerTierPlacementLegal) {
  const gatelevel::GateNetlist ckt = gatelevel::parity_tree(16);
  const Placer placer;
  const Placement p = placer.place(ckt, cells::Implementation::kMiv2Channel,
                                   Mode::kPerTier);
  EXPECT_EQ(p.top.cells.size(), ckt.instances().size());
  EXPECT_EQ(p.bottom.cells.size(), ckt.instances().size());
  check_legal(p.top);
  check_legal(p.bottom);
  EXPECT_DOUBLE_EQ(p.chip_area(), std::max(p.top.area(), p.bottom.area()));
}

TEST(Placer, PerTierNeverWorseThanCoupled) {
  // Per-tier packing removes the max() coupling, so the stacked outline can
  // only shrink (same packer, smaller or equal footprints per tier).
  const Placer placer;
  for (const auto& ckt : {gatelevel::ripple_carry_adder(8),
                          gatelevel::decoder(4), gatelevel::mux_tree(8)}) {
    for (cells::Implementation impl : cells::all_implementations()) {
      const Placement coupled = placer.place(ckt, impl, Mode::kCoupled);
      const Placement split = placer.place(ckt, impl, Mode::kPerTier);
      EXPECT_LT(split.chip_area(), coupled.chip_area() * 1.02)
          << ckt.name() << " " << cells::impl_name(impl);
    }
  }
}

TEST(Placer, MivImplementationsPlaceSmallerThan2D) {
  const gatelevel::GateNetlist ckt = gatelevel::ripple_carry_adder(8);
  const Placer placer;
  const double a2d =
      placer.place(ckt, cells::Implementation::k2D, Mode::kCoupled)
          .chip_area();
  const double a2ch =
      placer.place(ckt, cells::Implementation::kMiv2Channel, Mode::kCoupled)
          .chip_area();
  EXPECT_LT(a2ch, a2d);
  // The placed saving should be in the neighborhood of the cell-level -18%.
  const double saving = (a2d - a2ch) / a2d;
  EXPECT_GT(saving, 0.10);
  EXPECT_LT(saving, 0.30);
}

TEST(Placer, AspectRatioFollowsOption) {
  const gatelevel::GateNetlist ckt = gatelevel::decoder(4);
  PlacerOptions wide;
  wide.target_aspect = 4.0;
  PlacerOptions tall;
  tall.target_aspect = 0.25;
  const Placer pw(layout::DesignRules{}, wide);
  const Placer pt(layout::DesignRules{}, tall);
  const Placement a = pw.place(ckt, cells::Implementation::k2D, Mode::kCoupled);
  const Placement b = pt.place(ckt, cells::Implementation::k2D, Mode::kCoupled);
  EXPECT_GT(a.coupled.width / a.coupled.height,
            b.coupled.width / b.coupled.height);
}

TEST(Placer, SingleCellCircuit) {
  gatelevel::GateNetlist n("one");
  n.add_input("a");
  n.add_instance(cells::CellType::kInv1, "u1", {"a"}, "y");
  n.add_output("y");
  n.finalize();
  const Placer placer;
  const Placement p =
      placer.place(n, cells::Implementation::k2D, Mode::kCoupled);
  ASSERT_EQ(p.coupled.cells.size(), 1u);
  EXPECT_NEAR(p.coupled.utilization(), 1.0, 1e-9);
}

TEST(Placer, DeterministicAcrossRuns) {
  const gatelevel::GateNetlist ckt = gatelevel::mux_tree(8);
  const Placer placer;
  const Placement a =
      placer.place(ckt, cells::Implementation::kMiv1Channel, Mode::kCoupled);
  const Placement b =
      placer.place(ckt, cells::Implementation::kMiv1Channel, Mode::kCoupled);
  ASSERT_EQ(a.coupled.cells.size(), b.coupled.cells.size());
  for (std::size_t i = 0; i < a.coupled.cells.size(); ++i) {
    EXPECT_EQ(a.coupled.cells[i].instance, b.coupled.cells[i].instance);
    EXPECT_DOUBLE_EQ(a.coupled.cells[i].x, b.coupled.cells[i].x);
    EXPECT_DOUBLE_EQ(a.coupled.cells[i].y, b.coupled.cells[i].y);
  }
}

TEST(Placer, RejectsUnfinalizedNetlist) {
  gatelevel::GateNetlist n("raw");
  n.add_input("a");
  const Placer placer;
  EXPECT_THROW(placer.place(n, cells::Implementation::k2D, Mode::kCoupled),
               mivtx::Error);
}

}  // namespace
}  // namespace mivtx::place
