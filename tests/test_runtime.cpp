// mivtx::runtime: work-stealing pool determinism and exception contract,
// stable hashing, the content-addressed artifact cache (memory, disk,
// corruption recovery), lossless artifact serialization, and the
// parallel-vs-serial bit-identity of the PPA and variability flows.
#include <gtest/gtest.h>

#include <limits>

#include <atomic>
#include <chrono>
#include <cstddef>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "common/error.h"
#include "common/hash.h"
#include "common/rng.h"
#include "common/strings.h"
#include "core/artifacts.h"
#include "core/flow.h"
#include "core/ppa.h"
#include "core/reference_cards.h"
#include "core/variability.h"
#include "runtime/artifact_cache.h"
#include "runtime/metrics.h"
#include "runtime/thread_pool.h"
#include "temp_dir.h"

namespace mivtx {
namespace {

namespace fs = std::filesystem;

// ---------------------------------------------------------------- hashing

TEST(StableHash, DeterministicAndOrderSensitive) {
  StableHash a, b;
  a.mix(std::uint64_t{1}).mix(2.5).mix("abc");
  b.mix(std::uint64_t{1}).mix(2.5).mix("abc");
  EXPECT_EQ(a.digest(), b.digest());

  StableHash c;
  c.mix("abc").mix(2.5).mix(std::uint64_t{1});
  EXPECT_NE(a.digest(), c.digest());
}

TEST(StableHash, NegativeZeroCanonicalized) {
  StableHash pos, neg;
  pos.mix(0.0);
  neg.mix(-0.0);
  EXPECT_EQ(pos.digest(), neg.digest());
  StableHash tiny;
  tiny.mix(1e-300);
  EXPECT_NE(pos.digest(), tiny.digest());
}

TEST(StableHash, StringsAreLengthPrefixed) {
  StableHash a, b;
  a.mix("ab").mix("c");
  b.mix("a").mix("bc");
  EXPECT_NE(a.digest(), b.digest());
}

// ------------------------------------------------------------ thread pool

TEST(ThreadPool, SizeOneRunsInlineWithoutThreads) {
  runtime::ThreadPool pool(1);
  EXPECT_EQ(pool.size(), 1u);
  EXPECT_FALSE(pool.run_one());
}

TEST(ThreadPool, ManyTasksUnderContention) {
  runtime::ThreadPool pool(4);
  std::atomic<int> count{0};
  runtime::TaskGroup group(&pool);
  for (int i = 0; i < 500; ++i) {
    group.run([&count] { count.fetch_add(1, std::memory_order_relaxed); });
  }
  group.wait();
  EXPECT_EQ(count.load(), 500);
}

TEST(ThreadPool, RepeatedStartStop) {
  for (int round = 0; round < 8; ++round) {
    runtime::ThreadPool pool(3);
    std::atomic<int> count{0};
    runtime::parallel_for(&pool, 64,
                          [&count](std::size_t) { count.fetch_add(1); });
    EXPECT_EQ(count.load(), 64);
  }  // destructor joins all workers every round
}

TEST(ThreadPool, ParallelMapPreservesIndexOrder) {
  runtime::ThreadPool pool(4);
  const std::vector<std::size_t> out = runtime::parallel_map<std::size_t>(
      &pool, 200, [](std::size_t i) { return i * i; });
  ASSERT_EQ(out.size(), 200u);
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], i * i);
}

TEST(ThreadPool, PropagatesLowestIndexException) {
  runtime::ThreadPool pool(4);
  // Several indices throw; the caller must observe the same exception the
  // serial loop would have thrown first (index 37).
  auto work = [](std::size_t i) {
    if (i == 151 || i == 37 || i == 90) {
      throw std::runtime_error(std::to_string(i));
    }
  };
  try {
    runtime::parallel_for(&pool, 200, work);
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "37");
  }
}

TEST(ThreadPool, NestedGroupsDoNotDeadlock) {
  runtime::ThreadPool pool(2);
  std::atomic<int> count{0};
  // Outer fan-out saturates the pool; inner fan-outs must make progress via
  // help-while-wait instead of blocking every worker.
  runtime::parallel_for(&pool, 8, [&](std::size_t) {
    runtime::parallel_for(&pool, 8,
                          [&count](std::size_t) { count.fetch_add(1); });
  });
  EXPECT_EQ(count.load(), 64);
}

// ---------------------------------------------------------------- metrics

TEST(Metrics, CountersAndTimers) {
  runtime::Metrics m;
  m.add("widgets", 2.0);
  m.add("widgets");
  EXPECT_DOUBLE_EQ(m.counter_total("widgets"), 3.0);
  EXPECT_DOUBLE_EQ(m.counter_total("absent"), 0.0);
  { runtime::ScopedTimer t("phase", m); }
  const auto timers = m.timers();
  ASSERT_EQ(timers.count("phase"), 1u);
  EXPECT_EQ(timers.at("phase").count, 1u);
  EXPECT_GE(timers.at("phase").wall_s, 0.0);
  EXPECT_NE(m.render_json().find("\"widgets\""), std::string::npos);
  EXPECT_NE(m.render_text().find("phase"), std::string::npos);
  m.reset();
  EXPECT_DOUBLE_EQ(m.counter_total("widgets"), 0.0);
  EXPECT_TRUE(m.timers().empty());
}

TEST(Metrics, HistogramBucketsAndQuantiles) {
  EXPECT_EQ(runtime::histogram_bucket(0.0), 0u);
  EXPECT_EQ(runtime::histogram_bucket(1e-9), 0u);   // 1 ns
  EXPECT_EQ(runtime::histogram_bucket(2e-9), 1u);   // [2, 4) ns
  EXPECT_EQ(runtime::histogram_bucket(3e-9), 1u);
  EXPECT_EQ(runtime::histogram_bucket(1e-6), 9u);   // 1000 ns -> [512, 1024)
  EXPECT_EQ(runtime::histogram_bucket(1e9),
            runtime::kHistogramBuckets - 1);        // clamped

  runtime::Metrics m;
  for (int i = 0; i < 90; ++i) m.record_latency("lat", 1e-6);
  for (int i = 0; i < 10; ++i) m.record_latency("lat", 1e-3);
  const runtime::HistogramValue h = m.histogram("lat");
  EXPECT_EQ(h.count, 100u);
  EXPECT_DOUBLE_EQ(h.max_s, 1e-3);
  EXPECT_NEAR(h.mean_s(), (90 * 1e-6 + 10 * 1e-3) / 100.0, 1e-15);
  // Quantiles report the top edge of the holding bucket: the 50th sample
  // sits in [512, 1024) ns, the 95th in [2^19, 2^20) ns.
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 1024e-9);
  EXPECT_DOUBLE_EQ(h.quantile(0.95), 1048576e-9);
  EXPECT_DOUBLE_EQ(h.quantile(0.99), 1048576e-9);
  EXPECT_DOUBLE_EQ(runtime::HistogramValue{}.quantile(0.5), 0.0);

  EXPECT_NE(m.render_text().find("p95"), std::string::npos);
  const std::string json = m.render_json();
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"p99_s\""), std::string::npos);
  m.reset();
  EXPECT_EQ(m.histogram("lat").count, 0u);
}

TEST(Metrics, OverRangeLatencySamplesClampIntoTopBucket) {
  // Regression: bucketing used to cast log2(ns) to size_t before
  // clamping, so an infinite (or 1e9-overflowing) latency converted +inf
  // to an integer — undefined behavior the UBSan CI leg now guards.
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_EQ(runtime::histogram_bucket(inf), runtime::kHistogramBuckets - 1);
  EXPECT_EQ(runtime::histogram_bucket(1e300),  // ns product overflows to inf
            runtime::kHistogramBuckets - 1);
  EXPECT_EQ(runtime::histogram_bucket(std::numeric_limits<double>::max()),
            runtime::kHistogramBuckets - 1);
  EXPECT_EQ(runtime::histogram_bucket(-inf), 0u);

  runtime::Metrics m;
  m.record_latency("lat", inf);
  m.record_latency("lat", 1e-6);
  const runtime::HistogramValue h = m.histogram("lat");
  EXPECT_EQ(h.count, 2u);
  EXPECT_EQ(h.buckets[runtime::kHistogramBuckets - 1], 1u);
  // Rendering and quantiles stay finite-field well-formed.
  EXPECT_DOUBLE_EQ(h.quantile(0.25), 1024e-9);
  EXPECT_NE(m.render_json().find("\"lat\""), std::string::npos);
}

// ----------------------------------------------------------------- cache

TEST(ArtifactCache, MemoryHitMissAndLruEviction) {
  runtime::ArtifactCache::Options opts;
  opts.max_entries = 2;
  runtime::ArtifactCache cache(opts);
  const runtime::CacheKey k1{"ppa", 1}, k2{"ppa", 2}, k3{"ppa", 3};
  EXPECT_FALSE(cache.get(k1).has_value());
  cache.put(k1, "one");
  cache.put(k2, "two");
  EXPECT_EQ(cache.get(k1).value(), "one");  // promotes k1 to MRU
  cache.put(k3, "three");                   // evicts k2, the LRU entry
  EXPECT_EQ(cache.memory_entries(), 2u);
  EXPECT_FALSE(cache.get(k2).has_value());
  EXPECT_EQ(cache.get(k1).value(), "one");
  EXPECT_EQ(cache.get(k3).value(), "three");
  const runtime::CacheStats s = cache.stats();
  EXPECT_EQ(s.evictions, 1u);
  EXPECT_EQ(s.misses, 2u);
  EXPECT_EQ(s.hits, 3u);
  EXPECT_GT(s.hit_rate(), 0.5);
}

TEST(ArtifactCache, DiskRoundTripAcrossInstances) {
  // Unique per test process: a fixed /tmp name races against parallel
  // ctest workers and sibling build trees (see temp_dir.h).
  const testutil::ScopedTempDir scoped("mivtx_cache_rt");
  const fs::path dir = scoped.path();
  const runtime::CacheKey key{"char", 0xdeadbeef12345678ULL};
  {
    runtime::ArtifactCache::Options opts;
    opts.disk_dir = dir.string();
    runtime::ArtifactCache writer(opts);
    writer.put(key, "payload with\nnewlines and \x01 bytes");
  }
  runtime::ArtifactCache::Options opts;
  opts.disk_dir = dir.string();
  runtime::ArtifactCache reader(opts);
  const auto hit = reader.get(key);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, "payload with\nnewlines and \x01 bytes");
  EXPECT_EQ(reader.stats().disk_hits, 1u);
  // Pulled into memory: a second get is a pure memory hit.
  EXPECT_TRUE(reader.get(key).has_value());
  EXPECT_EQ(reader.stats().disk_hits, 1u);
  fs::remove_all(dir);
}

TEST(ArtifactCache, CorruptDiskFileIsAMissNotAnError) {
  const testutil::ScopedTempDir scoped("mivtx_cache_corrupt");
  const fs::path dir = scoped.path();
  const runtime::CacheKey key{"ppa", 42};
  runtime::ArtifactCache::Options opts;
  opts.disk_dir = dir.string();
  {
    runtime::ArtifactCache writer(opts);
    writer.put(key, "good payload");
    // Truncate the artifact mid-payload, as a crash or full disk would.
    std::ofstream out(dir / key.filename(), std::ios::trunc);
    out << "mivtx-artifact 1 ppa 002a 999\ngarb";
  }
  runtime::ArtifactCache reader(opts);
  EXPECT_FALSE(reader.get(key).has_value());
  const runtime::CacheStats s = reader.stats();
  EXPECT_EQ(s.corrupt, 1u);
  EXPECT_EQ(s.misses, 1u);
  // Recovery: a fresh put replaces the corrupt file.
  reader.put(key, "recomputed");
  runtime::ArtifactCache reader2(opts);
  EXPECT_EQ(reader2.get(key).value(), "recomputed");
  fs::remove_all(dir);
}

TEST(ArtifactCache, DiskGcEvictsOldestUnpinnedFirst) {
  const testutil::ScopedTempDir scoped("mivtx_cache_gc");
  const fs::path dir = scoped.path();
  const std::string payload(100, 'x');
  const runtime::CacheKey a{"ppa", 1}, b{"ppa", 2}, c{"ppa", 3};

  runtime::ArtifactCache::Options opts;
  opts.disk_dir = dir.string();
  {
    runtime::ArtifactCache probe(opts);  // unbounded: measure one file
    probe.put(a, payload);
  }
  const std::uintmax_t file_size = fs::file_size(dir / a.filename());
  opts.max_disk_bytes = file_size * 5 / 2;  // holds two artifacts, not three

  runtime::ArtifactCache cache(opts);  // seeds usage from the existing file
  EXPECT_EQ(cache.disk_usage_bytes(), file_size);
  using namespace std::chrono_literals;
  fs::last_write_time(dir / a.filename(),
                      fs::file_time_type::clock::now() - 2h);
  cache.put(b, payload);
  EXPECT_EQ(cache.stats().disk_evictions, 0u);  // two files fit
  fs::last_write_time(dir / b.filename(),
                      fs::file_time_type::clock::now() - 1h);

  cache.put(c, payload);  // over budget: the mtime-oldest artifact goes
  EXPECT_FALSE(fs::exists(dir / a.filename()));
  EXPECT_TRUE(fs::exists(dir / b.filename()));
  EXPECT_TRUE(fs::exists(dir / c.filename()));
  EXPECT_EQ(cache.stats().disk_evictions, 1u);
  EXPECT_LE(cache.disk_usage_bytes(), opts.max_disk_bytes);

  // Evicted from disk and never in this instance's memory layer: a miss.
  EXPECT_FALSE(cache.get(a).has_value());
  EXPECT_TRUE(cache.get(b).has_value());
}

TEST(ArtifactCache, DiskGcNeverEvictsPinnedEntries) {
  const testutil::ScopedTempDir scoped("mivtx_cache_pin");
  const fs::path dir = scoped.path();
  const std::string payload(100, 'x');
  const runtime::CacheKey a{"char", 1}, b{"char", 2}, c{"char", 3},
      d{"char", 4};

  runtime::ArtifactCache::Options opts;
  opts.disk_dir = dir.string();
  {
    runtime::ArtifactCache probe(opts);
    probe.put(a, payload);
  }
  const std::uintmax_t file_size = fs::file_size(dir / a.filename());
  opts.max_disk_bytes = file_size * 5 / 2;

  runtime::ArtifactCache cache(opts);
  using namespace std::chrono_literals;
  fs::last_write_time(dir / a.filename(),
                      fs::file_time_type::clock::now() - 2h);
  cache.put(b, payload);
  fs::last_write_time(dir / b.filename(),
                      fs::file_time_type::clock::now() - 1h);

  {
    // `a` is the eviction candidate by age, but it is in flight: the GC
    // must take the next-oldest unpinned artifact instead.
    const runtime::CachePin pin(&cache, a);
    cache.put(c, payload);
    EXPECT_TRUE(fs::exists(dir / a.filename()));
    EXPECT_FALSE(fs::exists(dir / b.filename()));
    EXPECT_EQ(cache.stats().disk_evictions, 1u);
  }

  // Pin released: the next over-budget store may finally evict `a`.
  cache.put(d, payload);
  EXPECT_FALSE(fs::exists(dir / a.filename()));
  EXPECT_TRUE(fs::exists(dir / c.filename()));
  EXPECT_TRUE(fs::exists(dir / d.filename()));
  EXPECT_EQ(cache.stats().disk_evictions, 2u);

  // Inert pins (null cache, moved-from) are safe no-ops.
  runtime::CachePin inert(nullptr, a);
  runtime::CachePin moved(std::move(inert));
}

// ----------------------------------------------------------- cache keys

TEST(ArtifactKeys, EveryPhysicsInputChangesTheDigest) {
  core::ProcessParams process;
  extract::SweepGrid grid;
  const runtime::CacheKey base = core::characterization_key(
      process, core::Variant::kTraditional, core::Polarity::kNmos, grid);
  EXPECT_EQ(base.domain, "char");

  core::ProcessParams thicker = process;
  thicker.l_gate *= 1.001;
  EXPECT_NE(base.digest,
            core::characterization_key(thicker, core::Variant::kTraditional,
                                       core::Polarity::kNmos, grid)
                .digest);
  extract::SweepGrid finer = grid;
  finer.n_vg += 1;
  EXPECT_NE(base.digest,
            core::characterization_key(process, core::Variant::kTraditional,
                                       core::Polarity::kNmos, finer)
                .digest);
  EXPECT_NE(base.digest,
            core::characterization_key(process, core::Variant::kMiv2Channel,
                                       core::Polarity::kNmos, grid)
                .digest);
  // Same inputs reproduce the same key across calls.
  EXPECT_EQ(base.digest,
            core::characterization_key(process, core::Variant::kTraditional,
                                       core::Polarity::kNmos, grid)
                .digest);
}

TEST(ArtifactKeys, PpaKeyTracksCardsAndOptions) {
  const core::ModelLibrary& lib = core::reference_model_library();
  core::PpaEngine engine(lib);
  const cells::ModelSet models =
      engine.model_set(cells::Implementation::kMiv2Channel);
  core::PpaOptions opts;
  layout::DesignRules rules;
  const runtime::CacheKey base =
      core::ppa_key(models, cells::CellType::kInv1,
                    cells::Implementation::kMiv2Channel, opts, rules);
  EXPECT_EQ(base.domain, "ppa");

  core::PpaOptions hotter = opts;
  hotter.vdd = 1.05;
  EXPECT_NE(base.digest,
            core::ppa_key(models, cells::CellType::kInv1,
                          cells::Implementation::kMiv2Channel, hotter, rules)
                .digest);
  cells::ModelSet perturbed = models;
  perturbed.nmos.vth0 += 1e-6;
  EXPECT_NE(base.digest,
            core::ppa_key(perturbed, cells::CellType::kInv1,
                          cells::Implementation::kMiv2Channel, opts, rules)
                .digest);
  EXPECT_NE(base.digest,
            core::ppa_key(models, cells::CellType::kNand2,
                          cells::Implementation::kMiv2Channel, opts, rules)
                .digest);
}

// -------------------------------------------------------- serialization

TEST(Artifacts, CharacteristicsRoundTripExactly) {
  extract::CharacteristicSet data;
  data.device_name = "nmos_test";
  data.vds_low = 0.05;
  data.vds_high = 1.0;
  // Values with no finite decimal expansion stress the %.17g round-trip.
  data.idvg_low = {{0.1, 1.0 / 3.0}, {0.2, 2e-7}, {0.3, 3e-6}};
  data.idvg_high = {{0.1, 1e-9}, {0.2, 1.0 / 7.0}, {0.3, 5e-5}};
  data.idvd.push_back({0.6, {{0.0, 0.0}, {0.5, 1e-5}, {1.0, 2e-5}}});
  data.idvd.push_back({1.0, {{0.0, 0.0}, {0.5, 4e-5}, {1.0, 8.1e-5}}});
  data.cv = {{0.0, 1.23456789012345e-15}, {1.0, 2e-15}};

  const extract::CharacteristicSet back =
      core::parse_characteristics(core::serialize_characteristics(data));
  EXPECT_EQ(back.device_name, data.device_name);
  EXPECT_EQ(back.vds_low, data.vds_low);
  EXPECT_EQ(back.vds_high, data.vds_high);
  ASSERT_EQ(back.idvg_low.size(), data.idvg_low.size());
  EXPECT_EQ(back.idvg_low[0].y, 1.0 / 3.0);  // exact, not NEAR
  ASSERT_EQ(back.idvd.size(), 2u);
  EXPECT_EQ(back.idvd[1].curve[2].y, 8.1e-5);
  EXPECT_EQ(back.cv[0].y, 1.23456789012345e-15);
}

TEST(Artifacts, ExtractionReportRoundTripExactly) {
  extract::ExtractionReport report;
  report.card = core::reference_model_library().card(
      core::Variant::kMiv4Channel, core::Polarity::kPmos);
  report.errors = {0.032, 1.0 / 3.0, 0.096};
  report.stages.push_back(
      {"low-drain", {"cdsc", "u0", "dvt0"}, 0.5, 0.04, 1234});
  report.stages.push_back({"ieff-retarget", {}, 0.08, 0.07, 77});

  const extract::ExtractionReport back =
      core::parse_extraction(core::serialize_extraction(report));
  EXPECT_EQ(back.card.to_model_line(), report.card.to_model_line());
  EXPECT_EQ(back.errors.idvd, 1.0 / 3.0);
  ASSERT_EQ(back.stages.size(), 2u);
  EXPECT_EQ(back.stages[0].name, "low-drain");
  ASSERT_EQ(back.stages[0].parameters.size(), 3u);
  EXPECT_EQ(back.stages[0].parameters[2], "dvt0");
  EXPECT_EQ(back.stages[0].evaluations, 1234u);
  EXPECT_EQ(back.stages[1].parameters.size(), 0u);
}

TEST(Artifacts, CellPpaRoundTripExactly) {
  core::CellPpa ppa;
  ppa.type = cells::CellType::kNand2;
  ppa.impl = cells::Implementation::kMiv4Channel;
  ppa.ok = true;
  ppa.delay = 23.456e-12 / 3.0;
  ppa.power = 1.7e-6;
  ppa.area = 0.33e-12;
  ppa.pdp = ppa.delay * ppa.power;
  ppa.mivs.total = 4;
  ppa.mivs.gate_external = 2;
  ppa.mivs.internal = 2;
  ppa.arcs.push_back({"A", true, 20e-12});
  ppa.arcs.push_back({"B", false, 1.0 / 3.0 * 1e-12});

  const core::CellPpa back = core::parse_cell_ppa(core::serialize_cell_ppa(ppa));
  EXPECT_EQ(back.type, ppa.type);
  EXPECT_EQ(back.impl, ppa.impl);
  EXPECT_TRUE(back.ok);
  EXPECT_EQ(back.delay, ppa.delay);
  EXPECT_EQ(back.pdp, ppa.pdp);
  EXPECT_EQ(back.mivs.gate_external, 2);
  ASSERT_EQ(back.arcs.size(), 2u);
  EXPECT_EQ(back.arcs[1].pin, "B");
  EXPECT_FALSE(back.arcs[1].input_rising);
  EXPECT_EQ(back.arcs[1].delay, 1.0 / 3.0 * 1e-12);
}

TEST(Artifacts, ParseRejectsMalformedPayloads) {
  EXPECT_THROW(core::parse_cell_ppa(""), Error);
  EXPECT_THROW(core::parse_cell_ppa("not an artifact"), Error);
  EXPECT_THROW(core::parse_characteristics("charset 999 future"), Error);
  const std::string good =
      core::serialize_cell_ppa(core::CellPpa{});
  EXPECT_THROW(core::parse_cell_ppa(good.substr(0, good.size() / 2)), Error);
}

// --------------------------------------------------- card text fidelity

TEST(CardText, ReferenceCardsRoundTripBitExactly) {
  const core::ModelLibrary& lib = core::reference_model_library();
  for (core::Polarity pol : {core::Polarity::kNmos, core::Polarity::kPmos}) {
    for (core::Variant v : core::all_variants()) {
      const bsimsoi::SoiModelCard& card = lib.card(v, pol);
      const bsimsoi::SoiModelCard back =
          bsimsoi::SoiModelCard::from_model_line(card.to_model_line());
      // Exact equality, not NEAR: %.17g + from_chars must be lossless.
      EXPECT_EQ(back.to_model_line(), card.to_model_line())
          << core::device_key(v, pol);
      EXPECT_EQ(back.vth0, card.vth0);
      EXPECT_EQ(back.u0, card.u0);
    }
  }
}

TEST(CardText, NonTerminatingDoublesSurvive) {
  bsimsoi::SoiModelCard card = core::reference_model_library().card(
      core::Variant::kTraditional, core::Polarity::kNmos);
  card.vth0 = 1.0 / 3.0;
  card.u0 = 0.1;  // not representable exactly in binary
  card.ua = 2.0 / 7.0 * 1e-9;
  const bsimsoi::SoiModelCard back =
      bsimsoi::SoiModelCard::from_model_line(card.to_model_line());
  EXPECT_EQ(back.vth0, 1.0 / 3.0);
  EXPECT_EQ(back.u0, 0.1);
  EXPECT_EQ(back.ua, 2.0 / 7.0 * 1e-9);
}

TEST(CardText, ModelLibraryTextRoundTripIsExact) {
  const core::ModelLibrary& lib = core::reference_model_library();
  const core::ModelLibrary back = core::ModelLibrary::from_text(lib.to_text());
  EXPECT_EQ(back.size(), lib.size());
  EXPECT_EQ(back.to_text(), lib.to_text());
}

// ------------------------------------------------------------ rng split

TEST(RngSplit, DoesNotAdvanceParent) {
  Rng a(123), b(123);
  (void)a.split(7);
  (void)a.split(8);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(RngSplit, StreamsAreReproducibleAndDistinct) {
  const Rng parent(42);
  Rng s0 = parent.split(0);
  Rng s0_again = parent.split(0);
  Rng s1 = parent.split(1);
  bool any_diff = false;
  for (int i = 0; i < 16; ++i) {
    const std::uint64_t v = s0.next_u64();
    EXPECT_EQ(v, s0_again.next_u64());
    any_diff |= v != s1.next_u64();
  }
  EXPECT_TRUE(any_diff);
}

// -------------------------------------------- parallel flows: identity

TEST(ParallelPpa, BitIdenticalForOneAndNThreads) {
  const core::ModelLibrary& lib = core::reference_model_library();
  core::PpaEngine serial(lib);

  runtime::ThreadPool pool(3);
  runtime::ExecPolicy exec;
  exec.pool = &pool;
  core::PpaEngine parallel(lib, {}, {}, exec);

  for (cells::CellType type :
       {cells::CellType::kInv1, cells::CellType::kNand2}) {
    const core::CellPpa a =
        serial.measure(type, cells::Implementation::kMiv2Channel);
    const core::CellPpa b =
        parallel.measure(type, cells::Implementation::kMiv2Channel);
    ASSERT_TRUE(a.ok);
    ASSERT_TRUE(b.ok);
    EXPECT_EQ(a.delay, b.delay);  // bit-identical, not NEAR
    EXPECT_EQ(a.power, b.power);
    EXPECT_EQ(a.pdp, b.pdp);
    EXPECT_EQ(a.area, b.area);
    ASSERT_EQ(a.arcs.size(), b.arcs.size());
    for (std::size_t i = 0; i < a.arcs.size(); ++i) {
      EXPECT_EQ(a.arcs[i].pin, b.arcs[i].pin);
      EXPECT_EQ(a.arcs[i].delay, b.arcs[i].delay);
    }
  }
}

TEST(ParallelPpa, CacheHitReturnsIdenticalResult) {
  const core::ModelLibrary& lib = core::reference_model_library();
  runtime::ArtifactCache cache;
  runtime::ExecPolicy exec;
  exec.cache = &cache;
  core::PpaEngine engine(lib, {}, {}, exec);

  const core::CellPpa first =
      engine.measure(cells::CellType::kInv1, cells::Implementation::k2D);
  ASSERT_TRUE(first.ok);
  EXPECT_EQ(cache.stats().hits, 0u);
  const core::CellPpa second =
      engine.measure(cells::CellType::kInv1, cells::Implementation::k2D);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(second.delay, first.delay);
  EXPECT_EQ(second.power, first.power);
  EXPECT_EQ(second.area, first.area);
  ASSERT_EQ(second.arcs.size(), first.arcs.size());
}

TEST(ParallelPpa, CorruptCachedPayloadTriggersRecompute) {
  const core::ModelLibrary& lib = core::reference_model_library();
  runtime::ArtifactCache cache;
  runtime::ExecPolicy exec;
  exec.cache = &cache;
  core::PpaEngine engine(lib, {}, {}, exec);

  const runtime::CacheKey key = core::ppa_key(
      engine.model_set(cells::Implementation::k2D), cells::CellType::kInv1,
      cells::Implementation::k2D, {}, engine.rules());
  cache.put(key, "this is not a CellPpa");
  const core::CellPpa ppa =
      engine.measure(cells::CellType::kInv1, cells::Implementation::k2D);
  ASSERT_TRUE(ppa.ok);  // recomputed despite the poisoned entry
  // The recomputed artifact replaced the garbage.
  const core::CellPpa again = core::parse_cell_ppa(cache.get(key).value());
  EXPECT_EQ(again.delay, ppa.delay);
}

TEST(ParallelVariability, BitIdenticalForOneAndNThreads) {
  const core::ModelLibrary& lib = core::reference_model_library();
  core::VariationSpec spec;
  spec.samples = 5;
  const core::VariabilityStats serial = core::run_variability(
      lib, cells::CellType::kInv1, cells::Implementation::k2D, spec);

  runtime::ThreadPool pool(3);
  runtime::ExecPolicy exec;
  exec.pool = &pool;
  const core::VariabilityStats parallel = core::run_variability(
      lib, cells::CellType::kInv1, cells::Implementation::k2D, spec, {}, exec);

  EXPECT_EQ(serial.samples, parallel.samples);
  EXPECT_EQ(serial.mean_delay, parallel.mean_delay);
  EXPECT_EQ(serial.sigma_delay, parallel.sigma_delay);
  EXPECT_EQ(serial.worst_delay, parallel.worst_delay);
  EXPECT_EQ(serial.mean_power, parallel.mean_power);
}

}  // namespace
}  // namespace mivtx
