// mivtx::serve: wire protocol, single-flight coalescing, admission
// control, drain semantics and end-to-end parity with the local flow.
//
// The end-to-end tests boot a real Server on an ephemeral loopback port
// and talk to it through real sockets.  Corners are deliberately tiny
// (grid_n 5, nm budget 10, polish stages off) so a cold device
// characterization takes seconds, not minutes — large enough that a herd
// of identical requests reliably assembles while the leader computes,
// small enough for the tier-1 gate.
#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "charlib/characterize.h"
#include "charlib/library.h"
#include "common/json.h"
#include "core/artifacts.h"
#include "core/flow.h"
#include "core/ppa.h"
#include "core/reference_cards.h"
#include "runtime/metrics.h"
#include "serve/client.h"
#include "serve/coalesce.h"
#include "serve/server.h"
#include "temp_dir.h"

namespace mivtx {
namespace {

using namespace std::chrono_literals;

// The cheap cold corner every end-to-end test uses.
serve::Request tiny_request(serve::RequestKind kind) {
  serve::Request req;
  req.kind = kind;
  req.id = "t";
  req.grid.n_vg = req.grid.n_vd = req.grid.n_cv = 5;
  req.extraction.nm.max_evaluations = 10;
  req.extraction.run_lm_polish = false;
  req.extraction.run_ieff_retarget = false;
  return req;
}

// Poll the server's health endpoint until `pred(meta)` holds.
template <typename Pred>
bool wait_for_health(int port, Pred pred, std::chrono::seconds budget = 30s) {
  const auto deadline = std::chrono::steady_clock::now() + budget;
  serve::Request health;
  health.kind = serve::RequestKind::kHealth;
  health.id = "h";
  while (std::chrono::steady_clock::now() < deadline) {
    serve::Client probe("127.0.0.1", port);
    const serve::Response resp = probe.call(health);
    if (resp.ok() && pred(Json::parse(resp.meta_json))) return true;
    std::this_thread::sleep_for(20ms);
  }
  return false;
}

double health_number(const Json& meta, const std::string& key) {
  const Json* v = meta.find(key);
  return v == nullptr ? -1.0 : v->as_number();
}

TEST(ServeProtocol, RequestRoundTripIsExact) {
  serve::Request req = tiny_request(serve::RequestKind::kExtract);
  req.id = "abc-1";
  req.variant = tcad::Variant::kMiv2Channel;
  req.polarity = tcad::Polarity::kPmos;
  req.process.vdd = 0.9;
  req.grid.vdd = 0.9;

  const std::string line = req.to_json_line();
  const serve::Request back = serve::Request::from_json_line(line);
  EXPECT_EQ(back.id, req.id);
  EXPECT_EQ(back.kind, req.kind);
  EXPECT_EQ(back.variant, req.variant);
  EXPECT_EQ(back.polarity, req.polarity);
  EXPECT_EQ(back.process.vdd, req.process.vdd);
  EXPECT_EQ(back.grid.vdd, req.grid.vdd);
  EXPECT_EQ(back.grid.n_vg, req.grid.n_vg);
  EXPECT_EQ(back.extraction.nm.max_evaluations,
            req.extraction.nm.max_evaluations);
  EXPECT_EQ(back.extraction.run_lm_polish, req.extraction.run_lm_polish);
  // Canonical line is stable under a round trip.
  EXPECT_EQ(back.to_json_line(), line);
}

TEST(ServeProtocol, CharlibRequestRoundTrip) {
  serve::Request req;
  req.kind = serve::RequestKind::kCharlib;
  req.id = "c1";
  req.cell = cells::CellType::kNand2;
  req.impl = cells::Implementation::kMiv4Channel;
  req.char_grid = "mini";
  req.process.vdd = 0.9;
  req.grid.vdd = 0.9;

  const std::string line = req.to_json_line();
  const serve::Request back = serve::Request::from_json_line(line);
  EXPECT_EQ(back.kind, req.kind);
  EXPECT_EQ(back.cell, req.cell);
  EXPECT_EQ(back.impl, req.impl);
  EXPECT_EQ(back.char_grid, req.char_grid);
  EXPECT_EQ(back.process.vdd, req.process.vdd);
  EXPECT_EQ(back.to_json_line(), line);

  // The default preset is elided from the wire line, like every other
  // nominal-corner field.
  req.char_grid = "default";
  EXPECT_EQ(req.to_json_line().find("char_grid"), std::string::npos);
  EXPECT_THROW(serve::Request::from_json_line(
                   R"({"kind":"charlib","char_grid":"huge"})"),
               Error);
}

TEST(ServeProtocol, UnknownFieldsAndTokensAreErrors) {
  EXPECT_THROW(serve::Request::from_json_line(
                   R"({"kind":"flow","gird_n":5})"),
               Error);  // typo'd field must not silently serve a corner
  EXPECT_THROW(serve::Request::from_json_line(R"({"kind":"warp"})"), Error);
  EXPECT_THROW(serve::Request::from_json_line(R"({"id":"x"})"), Error);
  EXPECT_THROW(serve::Request::from_json_line("not json"), Error);
  EXPECT_THROW(serve::Request::from_json_line(
                   R"({"kind":"ppa","cell":"FLUXCAP"})"),
               Error);
  EXPECT_THROW(serve::Request::from_json_line(
                   R"({"kind":"flow","grid_n":3})"),
               Error);
}

TEST(ServeProtocol, ResponseRoundTripIsExact) {
  serve::Response resp;
  resp.id = "r7";
  resp.status = serve::ResponseStatus::kQueueFull;
  resp.kind = "flow";
  resp.error = "admission queue full (64); back off and retry";
  resp.source = "computed";
  resp.payload = ".model nmos_trad ...\n";
  resp.elapsed_s = 1.25;
  resp.queue_s = 0.5;
  resp.span_id = 42;
  resp.meta_json = R"({"cards":8})";

  const serve::Response back =
      serve::Response::from_json_line(resp.to_json_line());
  EXPECT_EQ(back.id, resp.id);
  EXPECT_EQ(back.status, resp.status);
  EXPECT_EQ(back.kind, resp.kind);
  EXPECT_EQ(back.error, resp.error);
  EXPECT_EQ(back.source, resp.source);
  EXPECT_EQ(back.payload, resp.payload);
  EXPECT_EQ(back.elapsed_s, resp.elapsed_s);
  EXPECT_EQ(back.queue_s, resp.queue_s);
  EXPECT_EQ(back.span_id, resp.span_id);
  EXPECT_EQ(back.meta_json, resp.meta_json);
  EXPECT_FALSE(back.ok());
}

TEST(ServeProtocol, DigestIgnoresIdAndTracksCorner) {
  serve::Request a = tiny_request(serve::RequestKind::kFlow);
  serve::Request b = a;
  b.id = "completely-different";
  EXPECT_EQ(serve::Service::request_digest(a),
            serve::Service::request_digest(b));

  serve::Request c = a;
  c.process.vdd = 0.95;
  EXPECT_NE(serve::Service::request_digest(a),
            serve::Service::request_digest(c));
  serve::Request d = a;
  d.kind = serve::RequestKind::kCurves;
  EXPECT_NE(serve::Service::request_digest(a),
            serve::Service::request_digest(d));
}

TEST(ServeCoalescer, HerdOfEightComputesOnce) {
  serve::Coalescer co;
  std::atomic<int> computes{0};
  std::atomic<int> leaders{0};

  const auto compute = [&]() -> serve::Coalescer::Result {
    ++computes;
    // Hold the flight open until the whole herd has joined, so the
    // 1-computation assertion is deterministic, not a race we usually win.
    for (int i = 0; i < 5000 && co.waiters("k") < 7; ++i)
      std::this_thread::sleep_for(1ms);
    EXPECT_EQ(co.waiters("k"), 7u);
    serve::Coalescer::Result r;
    r.ok = true;
    r.payload = "artifact-bytes";
    return r;
  };

  std::vector<std::thread> herd;
  for (int i = 0; i < 8; ++i) {
    herd.emplace_back([&] {
      const auto [result, led] = co.run("k", compute);
      if (led) ++leaders;
      EXPECT_TRUE(result->ok);
      EXPECT_EQ(result->payload, "artifact-bytes");
    });
  }
  for (std::thread& t : herd) t.join();

  EXPECT_EQ(computes.load(), 1);
  EXPECT_EQ(leaders.load(), 1);
  EXPECT_EQ(co.inflight(), 0u);
  EXPECT_EQ(co.waiters("k"), 0u);
}

TEST(ServeCoalescer, FailuresCoalesceAndFlightsClose) {
  serve::Coalescer co;
  const auto [failed, led] = co.run("k", []() -> serve::Coalescer::Result {
    throw Error("corner exploded");
  });
  EXPECT_TRUE(led);
  EXPECT_FALSE(failed->ok);
  EXPECT_NE(failed->error.find("corner exploded"), std::string::npos);

  // The failed flight is closed: the next identical request recomputes.
  const auto [second, led2] = co.run("k", []() {
    serve::Coalescer::Result r;
    r.ok = true;
    r.payload = "fine now";
    return r;
  });
  EXPECT_TRUE(led2);
  EXPECT_TRUE(second->ok);
}

TEST(ServeServer, HealthMetricsAndHttpProbes) {
  serve::ServerOptions opts;
  opts.port = 0;
  opts.workers = 2;
  serve::Server server(opts);
  server.start();

  serve::Client client("127.0.0.1", server.port());
  serve::Request health;
  health.kind = serve::RequestKind::kHealth;
  health.id = "h1";
  const serve::Response hr = client.call(health);
  ASSERT_TRUE(hr.ok());
  const Json meta = Json::parse(hr.meta_json);
  EXPECT_EQ(meta.find("status")->as_string(), "ok");
  EXPECT_EQ(health_number(meta, "queue_depth"), 0.0);
  ASSERT_NE(meta.find("cache"), nullptr);

  serve::Request metrics;
  metrics.kind = serve::RequestKind::kMetrics;
  metrics.id = "m1";
  const serve::Response mr = client.call(metrics);
  ASSERT_TRUE(mr.ok());
  EXPECT_TRUE(Json::parse(mr.meta_json).is_object());

  // HTTP compatibility: GET /healthz answers JSON and closes.
  serve::Socket http = serve::connect_to("127.0.0.1", server.port());
  ASSERT_TRUE(http.write_all("GET /healthz HTTP/1.1\r\n\r\n"));
  serve::LineReader reader(http.fd());
  const auto status_line = reader.read_line();
  ASSERT_TRUE(status_line.has_value());
  EXPECT_EQ(*status_line, "HTTP/1.1 200 OK");
  bool saw_body = false;
  while (const auto line = reader.read_line()) {
    if (!line->empty() && (*line)[0] == '{') {
      EXPECT_TRUE(Json::parse(*line).is_object());
      saw_body = true;
    }
  }
  EXPECT_TRUE(saw_body);

  serve::Socket missing = serve::connect_to("127.0.0.1", server.port());
  ASSERT_TRUE(missing.write_all("GET /nope HTTP/1.1\r\n\r\n"));
  serve::LineReader reader404(missing.fd());
  const auto status404 = reader404.read_line();
  ASSERT_TRUE(status404.has_value());
  EXPECT_EQ(*status404, "HTTP/1.1 404 Not Found");

  // Malformed JSON is a typed error response, not a dropped connection.
  serve::Socket bad = serve::connect_to("127.0.0.1", server.port());
  ASSERT_TRUE(bad.write_all("{\"kind\":\"flow\",\"gird_n\":5}\n"));
  serve::LineReader bad_reader(bad.fd());
  const auto bad_line = bad_reader.read_line();
  ASSERT_TRUE(bad_line.has_value());
  const serve::Response bad_resp = serve::Response::from_json_line(*bad_line);
  EXPECT_EQ(bad_resp.status, serve::ResponseStatus::kError);
  EXPECT_NE(bad_resp.error.find("gird_n"), std::string::npos);

  server.begin_shutdown();
  server.wait();
}

// The acceptance scenario: a herd of identical concurrent cold requests
// triggers exactly one computation, every response carries identical
// bytes, and those bytes match what the local flow units produce.
TEST(ServeServer, ColdHerdCoalescesAndMatchesLocalFlow) {
  const testutil::ScopedTempDir cache_dir("mivtx_serve_herd");
  runtime::Metrics::global().reset();

  serve::ServerOptions opts;
  opts.port = 0;
  opts.workers = 8;
  opts.service.jobs = 1;
  opts.service.cache.disk_dir = cache_dir.str();
  serve::Server server(opts);
  server.start();

  const serve::Request req = tiny_request(serve::RequestKind::kFlow);
  constexpr int kHerd = 8;
  std::vector<serve::Response> responses(kHerd);
  std::vector<std::thread> clients;
  for (int i = 0; i < kHerd; ++i) {
    clients.emplace_back([&, i] {
      serve::Client client("127.0.0.1", server.port());
      serve::Request mine = req;
      mine.id = "herd-" + std::to_string(i);
      responses[i] = client.call(mine);
    });
  }
  for (std::thread& t : clients) t.join();

  int computed = 0, coalesced = 0;
  for (int i = 0; i < kHerd; ++i) {
    ASSERT_TRUE(responses[i].ok()) << responses[i].error;
    EXPECT_EQ(responses[i].id, "herd-" + std::to_string(i));
    EXPECT_EQ(responses[i].payload, responses[0].payload);
    if (responses[i].source == "computed") ++computed;
    if (responses[i].source == "coalesced") ++coalesced;
  }
  EXPECT_EQ(computed, 1);
  EXPECT_EQ(coalesced, kHerd - 1);
  EXPECT_EQ(runtime::Metrics::global().counter_total("serve.computed"), 1.0);
  EXPECT_EQ(runtime::Metrics::global().counter_total("serve.coalesced"),
            static_cast<double>(kHerd - 1));
  // The request latency histogram saw the whole herd.
  EXPECT_EQ(runtime::Metrics::global().histogram("serve.latency").count,
            static_cast<std::uint64_t>(kHerd));

  // A warm repeat is served from the cache, dramatically faster than the
  // cold computation (the CI smoke asserts the >= 10x version of this).
  serve::Client warm_client("127.0.0.1", server.port());
  serve::Request warm = req;
  warm.id = "warm";
  const serve::Response warm_resp = warm_client.call(warm);
  ASSERT_TRUE(warm_resp.ok());
  EXPECT_EQ(warm_resp.payload, responses[0].payload);
  EXPECT_LT(warm_resp.elapsed_s, responses[0].elapsed_s);

  server.begin_shutdown();
  server.wait();

  // Local ground truth over the same (now warm) artifact store: artifact
  // round-trips are exact (test_runtime.cpp), so this equals a cold local
  // run — byte for byte.
  runtime::ArtifactCache::Options copts;
  copts.disk_dir = cache_dir.str();
  runtime::ArtifactCache cache(copts);
  core::FlowOptions fo;
  fo.jobs = 1;
  fo.cache = &cache;
  const core::FlowResult local =
      core::run_full_flow(req.process, req.grid, req.extraction, fo);
  EXPECT_EQ(local.library.to_text(), responses[0].payload);
}

TEST(ServeServer, PpaMatchesLocalEngineExactly) {
  serve::ServerOptions opts;
  opts.port = 0;
  opts.workers = 2;
  serve::Server server(opts);
  server.start();

  serve::Request req;
  req.kind = serve::RequestKind::kPpa;
  req.id = "ppa";
  req.cell = cells::CellType::kNand2;
  req.impl = cells::Implementation::kMiv2Channel;
  req.reference_library = true;

  serve::Client client("127.0.0.1", server.port());
  const serve::Response resp = client.call(req);
  ASSERT_TRUE(resp.ok()) << resp.error;

  core::PpaEngine engine(core::reference_model_library());
  const core::CellPpa local =
      engine.measure(cells::CellType::kNand2,
                     cells::Implementation::kMiv2Channel);
  EXPECT_EQ(core::serialize_cell_ppa(local), resp.payload);

  server.begin_shutdown();
  server.wait();
}

// The charlib kind serves one cell's NLDM entry as .mlib text: the payload
// parses back into a one-cell library on the requested grid, and a warm
// repeat returns identical bytes from the artifact cache.
TEST(ServeServer, CharlibServesOneLibraryEntry) {
  const testutil::ScopedTempDir cache_dir("mivtx_serve_charlib");
  serve::ServerOptions opts;
  opts.port = 0;
  opts.workers = 2;
  opts.service.cache.disk_dir = cache_dir.str();
  serve::Server server(opts);
  server.start();

  serve::Request req = tiny_request(serve::RequestKind::kCharlib);
  req.id = "cl";
  req.cell = cells::CellType::kInv1;
  req.impl = cells::Implementation::kMiv1Channel;
  req.char_grid = "mini";

  serve::Client client("127.0.0.1", server.port());
  const serve::Response resp = client.call(req);
  ASSERT_TRUE(resp.ok()) << resp.error;

  const charlib::CharLibrary lib =
      charlib::CharLibrary::from_text(resp.payload);
  EXPECT_EQ(lib.slew_axis, charlib::mini_char_grid().slews);
  EXPECT_EQ(lib.load_axis, charlib::mini_char_grid().loads);
  const charlib::CellChar* entry =
      lib.find(cells::Implementation::kMiv1Channel, cells::CellType::kInv1);
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->arcs.size(), 2u);  // one pin, rise + fall input arcs
  EXPECT_GT(entry->area, 0.0);
  const Json meta = Json::parse(resp.meta_json);
  ASSERT_NE(meta.find("arcs"), nullptr);
  EXPECT_EQ(meta.find("arcs")->as_number(), 2.0);

  serve::Request again = req;
  again.id = "cl2";
  const serve::Response warm = client.call(again);
  ASSERT_TRUE(warm.ok()) << warm.error;
  EXPECT_EQ(warm.payload, resp.payload);

  server.begin_shutdown();
  server.wait();
}

TEST(ServeServer, QueueFullIsATypedResponse) {
  runtime::Metrics::global().reset();
  serve::ServerOptions opts;
  opts.port = 0;
  opts.workers = 1;
  opts.queue_capacity = 1;
  serve::Server server(opts);
  server.start();

  const serve::Request cold = tiny_request(serve::RequestKind::kCurves);

  // A: occupies the only worker (cold characterization, seconds).
  serve::Client a("127.0.0.1", server.port());
  serve::Request ra = cold;
  ra.id = "A";
  a.send(ra);
  ASSERT_TRUE(wait_for_health(server.port(), [](const Json& meta) {
    return health_number(meta, "active") == 1.0;
  }));

  // B: fills the queue (capacity 1).
  serve::Client b("127.0.0.1", server.port());
  serve::Request rb = cold;
  rb.id = "B";
  b.send(rb);
  ASSERT_TRUE(wait_for_health(server.port(), [](const Json& meta) {
    return health_number(meta, "queue_depth") == 1.0;
  }));

  // C: must bounce immediately with the typed backpressure status.
  serve::Client c("127.0.0.1", server.port());
  serve::Request rc = cold;
  rc.id = "C";
  const serve::Response bounced = c.call(rc);
  EXPECT_EQ(bounced.status, serve::ResponseStatus::kQueueFull);
  EXPECT_EQ(bounced.id, "C");
  EXPECT_NE(bounced.error.find("back off"), std::string::npos);
  EXPECT_EQ(
      runtime::Metrics::global().counter_total("serve.rejected.queue_full"),
      1.0);

  // The admitted requests still complete normally.
  const auto resp_a = a.read();
  ASSERT_TRUE(resp_a.has_value());
  EXPECT_TRUE(resp_a->ok()) << resp_a->error;
  const auto resp_b = b.read();
  ASSERT_TRUE(resp_b.has_value());
  EXPECT_TRUE(resp_b->ok()) << resp_b->error;
  EXPECT_EQ(resp_a->payload, resp_b->payload);

  server.begin_shutdown();
  server.wait();
}

TEST(ServeServer, DrainCompletesAdmittedWorkAndRejectsNew) {
  serve::ServerOptions opts;
  opts.port = 0;
  opts.workers = 1;
  serve::Server server(opts);
  server.start();

  const serve::Request cold = tiny_request(serve::RequestKind::kCurves);

  // A occupies the worker; B is admitted behind it.
  serve::Client a("127.0.0.1", server.port());
  serve::Request ra = cold;
  ra.id = "A";
  a.send(ra);
  ASSERT_TRUE(wait_for_health(server.port(), [](const Json& meta) {
    return health_number(meta, "active") == 1.0;
  }));
  serve::Client b("127.0.0.1", server.port());
  serve::Request rb = cold;
  rb.id = "B";
  b.send(rb);
  ASSERT_TRUE(wait_for_health(server.port(), [](const Json& meta) {
    return health_number(meta, "queue_depth") == 1.0;
  }));

  // Connect the late client now — once the drain starts the listener is
  // closed, so only an already-open connection can observe "draining".
  serve::Client late("127.0.0.1", server.port());

  // Drain starts while A is mid-computation...
  serve::Client stopper("127.0.0.1", server.port());
  serve::Request stop;
  stop.kind = serve::RequestKind::kShutdown;
  stop.id = "stop";
  EXPECT_TRUE(stopper.call(stop).ok());
  EXPECT_TRUE(server.draining());

  // ...so a new compute request gets the typed draining status (the drain
  // cannot finish while A holds the worker).
  serve::Request rl = cold;
  rl.id = "late";
  const serve::Response rejected = late.call(rl);
  EXPECT_EQ(rejected.status, serve::ResponseStatus::kDraining);

  // No admitted work is lost: both A and B complete and flush.
  const auto resp_a = a.read();
  ASSERT_TRUE(resp_a.has_value());
  EXPECT_TRUE(resp_a->ok()) << resp_a->error;
  const auto resp_b = b.read();
  ASSERT_TRUE(resp_b.has_value());
  EXPECT_TRUE(resp_b->ok()) << resp_b->error;

  server.wait();
}

}  // namespace
}  // namespace mivtx
