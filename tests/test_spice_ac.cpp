// AC small-signal analysis: transfer functions against analytic RC
// references, operating-point linearization consistency, and the
// capacitance-matrix assembly.
#include <gtest/gtest.h>

#include <cmath>

#include "bsimsoi/model.h"
#include "bsimsoi/params.h"
#include "common/error.h"
#include "linalg/complex_dense.h"
#include "spice/ac.h"
#include "spice/mna.h"

namespace mivtx::spice {
namespace {

TEST(ComplexLU, SolvesKnownSystem) {
  using linalg::Complex;
  linalg::ComplexDenseMatrix a(2, 2);
  a(0, 0) = Complex(1, 1);
  a(0, 1) = Complex(0, -1);
  a(1, 0) = Complex(2, 0);
  a(1, 1) = Complex(1, 0);
  const linalg::ComplexVector x =
      linalg::solve_complex_dense(a, {Complex(1, 0), Complex(0, 1)});
  // Verify by substitution.
  linalg::ComplexDenseMatrix a2(2, 2);
  a2(0, 0) = Complex(1, 1);
  a2(0, 1) = Complex(0, -1);
  a2(1, 0) = Complex(2, 0);
  a2(1, 1) = Complex(1, 0);
  const auto r = a2.multiply(x);
  EXPECT_NEAR(std::abs(r[0] - Complex(1, 0)), 0.0, 1e-12);
  EXPECT_NEAR(std::abs(r[1] - Complex(0, 1)), 0.0, 1e-12);
}

TEST(LogGrid, SpansDecades) {
  const auto f = log_frequency_grid(1e3, 1e6, 10);
  EXPECT_NEAR(f.front(), 1e3, 1e-9);
  EXPECT_NEAR(f.back(), 1e6, 1e-3);
  EXPECT_EQ(f.size(), 31u);
  for (std::size_t i = 1; i < f.size(); ++i) EXPECT_GT(f[i], f[i - 1]);
  EXPECT_THROW(log_frequency_grid(0.0, 1e3, 10), Error);
}

Circuit rc_lowpass(double r, double c) {
  Circuit ckt;
  const NodeId in = ckt.node("in"), out = ckt.node("out");
  ckt.add_vsource("VIN", in, kGround, SourceSpec::DC(0.0));
  ckt.add_resistor("R1", in, out, r);
  ckt.add_capacitor("C1", out, kGround, c);
  return ckt;
}

TEST(Ac, RcLowPassMatchesAnalytic) {
  const double r = 1e3, c = 1e-12;
  const double fc = 1.0 / (2.0 * M_PI * r * c);
  const Circuit ckt = rc_lowpass(r, c);
  const std::vector<double> freqs = {fc / 100.0, fc, fc * 100.0};
  const AcResult ac = ac_analysis(ckt, "VIN", freqs);
  ASSERT_TRUE(ac.ok) << ac.error;
  // |H| = 1/sqrt(1 + (f/fc)^2)
  EXPECT_NEAR(ac.magnitude("out", 0), 1.0, 1e-3);
  EXPECT_NEAR(ac.magnitude("out", 1), 1.0 / std::sqrt(2.0), 1e-6);
  EXPECT_NEAR(ac.magnitude("out", 2), 0.01, 1e-4);
  // Phase at fc is -45 degrees.
  EXPECT_NEAR(ac.phase("out", 1), -M_PI / 4.0, 1e-6);
}

TEST(Ac, RcHighPass) {
  const double r = 1e3, c = 1e-12;
  const double fc = 1.0 / (2.0 * M_PI * r * c);
  Circuit ckt;
  const NodeId in = ckt.node("in"), out = ckt.node("out");
  ckt.add_vsource("VIN", in, kGround, SourceSpec::DC(0.0));
  ckt.add_capacitor("C1", in, out, c);
  ckt.add_resistor("R1", out, kGround, r);
  const AcResult ac = ac_analysis(ckt, "VIN", {fc});
  ASSERT_TRUE(ac.ok);
  EXPECT_NEAR(ac.magnitude("out", 0), 1.0 / std::sqrt(2.0), 1e-3);
  EXPECT_NEAR(ac.phase("out", 0), M_PI / 4.0, 1e-2);
}

TEST(Ac, RequiresVoltageSource) {
  Circuit ckt;
  const NodeId a = ckt.node("a");
  ckt.add_isource("I1", kGround, a, SourceSpec::DC(1e-6));
  ckt.add_resistor("R1", a, kGround, 1e3);
  EXPECT_THROW(ac_analysis(ckt, "I1", {1e6}), Error);
}

bsimsoi::SoiModelCard nch() {
  bsimsoi::SoiModelCard c;
  c.polarity = bsimsoi::Polarity::kNmos;
  c.vth0 = 0.35;
  c.l = 24e-9;
  c.w = 192e-9;
  c.u0 = 0.03;
  c.cgso = c.cgdo = 5e-11;
  return c;
}

TEST(Ac, CommonSourceDcGainMatchesGmRo) {
  // |A(f->0)| should equal gm * (RL || ro); with our model gds is finite.
  Circuit ckt;
  const NodeId vdd = ckt.node("vdd"), in = ckt.node("in"),
               out = ckt.node("out");
  ckt.add_vsource("VDD", vdd, kGround, SourceSpec::DC(1.0));
  ckt.add_vsource("VIN", in, kGround, SourceSpec::DC(0.45));
  ckt.add_resistor("RL", vdd, out, 20e3);
  ckt.add_mosfet("M1", out, in, kGround, nch());
  const DcResult dc = dc_operating_point(ckt);
  ASSERT_TRUE(dc.converged);
  const double vout = solution_voltage(ckt, dc.x, out);
  const auto m = bsimsoi::eval(nch(), 0.45, vout, 0.0);
  const double gm = m.dids[bsimsoi::kDvG];
  const double go = m.dids[bsimsoi::kDvD];
  const double expect = gm / (go + 1.0 / 20e3);

  const AcResult ac = ac_analysis(ckt, "VIN", {1e3});
  ASSERT_TRUE(ac.ok);
  EXPECT_NEAR(ac.magnitude("out", 0), expect, 0.02 * expect);
  // Inverting stage: phase ~ 180 degrees at low frequency.
  EXPECT_NEAR(std::fabs(ac.phase("out", 0)), M_PI, 1e-2);
}

TEST(Ac, GainRollsOffWithLoadCap) {
  Circuit ckt;
  const NodeId vdd = ckt.node("vdd"), in = ckt.node("in"),
               out = ckt.node("out");
  ckt.add_vsource("VDD", vdd, kGround, SourceSpec::DC(1.0));
  ckt.add_vsource("VIN", in, kGround, SourceSpec::DC(0.45));
  ckt.add_resistor("RL", vdd, out, 20e3);
  ckt.add_capacitor("CL", out, kGround, 10e-15);
  ckt.add_mosfet("M1", out, in, kGround, nch());
  const auto freqs = log_frequency_grid(1e6, 1e11, 6);
  const AcResult ac = ac_analysis(ckt, "VIN", freqs);
  ASSERT_TRUE(ac.ok);
  const double a0 = ac.magnitude("out", 0);
  const double a_end = ac.magnitude("out", freqs.size() - 1);
  EXPECT_GT(a0, 1.0);        // gain stage
  EXPECT_LT(a_end, 0.5 * a0);  // rolled off
  // Monotone non-increasing magnitude (single dominant pole + feedthrough
  // zero far out).
  for (std::size_t k = 1; k + 1 < freqs.size(); ++k) {
    EXPECT_LE(ac.magnitude("out", k), ac.magnitude("out", k - 1) * 1.001);
  }
}

TEST(CapacitanceMatrix, CapacitorStamps) {
  Circuit ckt;
  const NodeId a = ckt.node("a"), b = ckt.node("b");
  ckt.add_vsource("V1", a, kGround, SourceSpec::DC(1.0));
  ckt.add_capacitor("C1", a, b, 3e-15);
  ckt.add_resistor("R1", b, kGround, 1e3);
  const DcResult dc = dc_operating_point(ckt);
  ASSERT_TRUE(dc.converged);
  linalg::DenseMatrix cmat;
  assemble_capacitance(ckt, dc.x, cmat);
  const std::size_t ia = ckt.node_unknown(a), ib = ckt.node_unknown(b);
  EXPECT_DOUBLE_EQ(cmat(ia, ia), 3e-15);
  EXPECT_DOUBLE_EQ(cmat(ib, ib), 3e-15);
  EXPECT_DOUBLE_EQ(cmat(ia, ib), -3e-15);
  EXPECT_DOUBLE_EQ(cmat(ib, ia), -3e-15);
}

TEST(CapacitanceMatrix, MosfetRowsSumToZero) {
  // Charge neutrality (qg + qd + qs = 0) means each column of the device's
  // C-stamp sums to zero over the three terminal rows.
  Circuit ckt;
  const NodeId d = ckt.node("d"), g = ckt.node("g"), s = ckt.node("s");
  ckt.add_vsource("VD", d, kGround, SourceSpec::DC(0.6));
  ckt.add_vsource("VG", g, kGround, SourceSpec::DC(0.8));
  ckt.add_vsource("VS", s, kGround, SourceSpec::DC(0.1));
  ckt.add_mosfet("M1", d, g, s, nch());
  const DcResult dc = dc_operating_point(ckt);
  ASSERT_TRUE(dc.converged);
  linalg::DenseMatrix cmat;
  assemble_capacitance(ckt, dc.x, cmat);
  const std::size_t rows[3] = {ckt.node_unknown(g), ckt.node_unknown(d),
                               ckt.node_unknown(s)};
  for (const std::size_t col : rows) {
    double sum = 0.0;
    for (const std::size_t row : rows) sum += cmat(row, col);
    EXPECT_NEAR(sum, 0.0, 1e-22);
  }
}

}  // namespace
}  // namespace mivtx::spice
