// Cross-corner lane packing (spice/corner.h): the lockstepped lane-packed
// transient must agree with per-lane scalar transients within the shared
// LTE tolerances, and every fallback path (single lane, scalar device
// eval, topology mismatch) must stay correct.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "cells/netgen.h"
#include "core/ppa.h"
#include "core/reference_cards.h"
#include "core/variability.h"
#include "spice/corner.h"
#include "spice/transient.h"

namespace mivtx::spice {
namespace {

// Parasitic-annotated cell with pin 0 pulsed and the side inputs at their
// sensitizing levels (same stimulus as the sparse backend tests).
Circuit sample_cell(cells::CellType type, cells::Implementation impl) {
  const core::PpaEngine engine(core::reference_model_library());
  cells::CellNetlist cell = cells::build_cell(
      type, impl, engine.model_set(impl), cells::ParasiticSpec{}, 1.0);
  const std::vector<std::string> inputs = cells::cell_input_names(type);
  const auto side = core::PpaEngine::sensitize(type, 0);
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    Element& src = cell.circuit.element("V" + inputs[i]);
    if (i == 0) {
      PulseSpec p;
      p.v1 = 0.0;
      p.v2 = 1.0;
      p.delay = 20e-12;
      p.rise = 20e-12;
      p.fall = 20e-12;
      p.width = 100e-12;
      src.source = SourceSpec::Pulse(p);
    } else {
      src.source =
          SourceSpec::DC(side.has_value() && (*side)[i] ? 1.0 : 0.0);
    }
  }
  return cell.circuit;
}

// Process-corner variant: every MOSFET's card perturbed through the same
// helper the Monte-Carlo engine uses (topology untouched).
Circuit corner_of(const Circuit& base, double dvth, double u0_scale) {
  Circuit out = base;
  for (Element& e : out.elements()) {
    if (e.kind != ElementKind::kMosfet) continue;
    e.model = core::perturb_card(e.model, dvth, u0_scale);
  }
  return out;
}

TEST(CornerTransient, LockstepMatchesScalarPerLane) {
  const Circuit base =
      sample_cell(cells::CellType::kNand2, cells::Implementation::kMiv2Channel);
  const std::vector<Circuit> corners = {
      corner_of(base, 0.0, 1.0), corner_of(base, +0.03, 0.95),
      corner_of(base, -0.03, 1.05), corner_of(base, +0.015, 1.10),
      corner_of(base, -0.02, 0.90)};  // 5 lanes: exercises a partial block
  std::vector<const Circuit*> ptrs;
  for (const Circuit& c : corners) ptrs.push_back(&c);

  TransientOptions topt;
  topt.t_stop = 2e-10;

  const CornerTransientResult group = corner_transient(ptrs, topt);
  ASSERT_TRUE(group.ok) << group.error;
  EXPECT_TRUE(group.lockstep);
  ASSERT_EQ(group.lanes.size(), corners.size());

  for (std::size_t k = 0; k < corners.size(); ++k) {
    const TransientResult scalar = transient(corners[k], topt);
    ASSERT_TRUE(scalar.ok) << "lane " << k;
    const TransientResult& lane = group.lanes[k];
    ASSERT_TRUE(lane.ok) << "lane " << k;
    for (const auto& [node, wave] : scalar.node_voltage) {
      const auto it = lane.node_voltage.find(node);
      ASSERT_NE(it, lane.node_voltage.end()) << node;
      EXPECT_NEAR(wave.t_end(), it->second.t_end(), 1e-18);
      // The engines take different adaptive step sequences, so compare
      // interpolated waveforms inside the shared LTE budget (reltol 1e-4
      // of a 1 V swing, plus interpolation slack on the edges).
      for (double t = 0.0; t <= topt.t_stop; t += topt.t_stop / 40.0) {
        EXPECT_NEAR(wave.sample(t), it->second.sample(t), 5e-3)
            << "lane " << k << " node " << node << " t=" << t;
      }
      // Settled endpoints agree much tighter than mid-edge samples.
      EXPECT_NEAR(wave.value(wave.size() - 1),
                  it->second.value(it->second.size() - 1), 1e-4)
          << "lane " << k << " node " << node;
    }
  }
}

TEST(CornerTransient, SingleLaneFallsBackToScalarPath) {
  const Circuit base =
      sample_cell(cells::CellType::kInv1, cells::Implementation::k2D);
  TransientOptions topt;
  topt.t_stop = 1e-10;
  const CornerTransientResult group = corner_transient({&base}, topt);
  ASSERT_TRUE(group.ok) << group.error;
  EXPECT_FALSE(group.lockstep);
  ASSERT_EQ(group.lanes.size(), 1u);
  EXPECT_TRUE(group.lanes[0].ok);
}

TEST(CornerTransient, ScalarDeviceEvalFallsBackAndStaysCorrect) {
  const Circuit base =
      sample_cell(cells::CellType::kInv1, cells::Implementation::k2D);
  const Circuit alt = corner_of(base, +0.02, 1.0);
  TransientOptions topt;
  topt.t_stop = 1e-10;
  topt.newton.device_eval = DeviceEval::kScalar;
  const CornerTransientResult group = corner_transient({&base, &alt}, topt);
  ASSERT_TRUE(group.ok) << group.error;
  EXPECT_FALSE(group.lockstep);  // scalar reference never lane-packs
  ASSERT_EQ(group.lanes.size(), 2u);
}

// Regression: per-lane pulse corners that differ only by accumulated
// round-off (a few ULP at millisecond timestamps, where one ULP already
// exceeds the old absolute 1e-18 dedup epsilon) must coalesce into one
// stepping event.  Before breakpoint_tol the near-duplicates survived the
// union, the landing step on the second alias came out below h_min, and
// the engine silently dropped out of lockstep onto the scalar path.
TEST(CornerTransient, UlpJitteredBreakpointsStayLockstep) {
  const Circuit base =
      sample_cell(cells::CellType::kInv1, cells::Implementation::kMiv2Channel);
  Circuit a = base;
  Circuit b = corner_of(base, +0.02, 0.98);
  PulseSpec p;
  p.v1 = 0.0;
  p.v2 = 1.0;
  p.delay = 4e-3;  // ULP(4 ms) ~ 8.7e-19 s
  p.rise = 1e-6;
  p.fall = 1e-6;
  p.width = 1e-4;
  a.element("VA").source = SourceSpec::Pulse(p);
  double jittered = p.delay;
  for (int k = 0; k < 4; ++k)
    jittered = std::nextafter(jittered, 1.0);  // ~3.5e-18 s of jitter
  ASSERT_GT(jittered - p.delay, 1e-18);  // distinct under an absolute epsilon
  p.delay = jittered;
  b.element("VA").source = SourceSpec::Pulse(p);

  TransientOptions topt;
  topt.t_stop = 4.2e-3;
  topt.h_min = 1e-15;  // any surviving alias forces a sub-h_min landing

  const CornerTransientResult group = corner_transient({&a, &b}, topt);
  ASSERT_TRUE(group.ok) << group.error;
  EXPECT_TRUE(group.lockstep)
      << "ULP-jittered breakpoint union broke lane packing";
  ASSERT_EQ(group.lanes.size(), 2u);
  for (std::size_t k = 0; k < 2; ++k) {
    ASSERT_TRUE(group.lanes[k].ok) << "lane " << k;
    // Both lanes saw the (coalesced) edge: the inverter output swings low
    // for the pulse width and recovers by t_stop.
    const waveform::Waveform& out = group.lanes[k].v("y_load");
    EXPECT_NEAR(out.sample(0.0), 1.0, 5e-2) << "lane " << k;
    EXPECT_NEAR(out.sample(4.05e-3), 0.0, 5e-2) << "lane " << k;
    EXPECT_NEAR(out.sample(topt.t_stop), 1.0, 5e-2) << "lane " << k;
  }
}

TEST(Transient, CoalesceBreakpointsMergesUlpClusters) {
  // Absolute floor near t=0: distinct sub-1e-18 times collapse...
  std::vector<double> bp{0.0, 5e-19, 1e-12, 4e-3};
  // ...and at 4 ms a 4-ULP alias collapses too, keeping the largest.
  double alias = 4e-3;
  for (int k = 0; k < 4; ++k) alias = std::nextafter(alias, 1.0);
  bp.push_back(alias);
  coalesce_breakpoints(bp);
  ASSERT_EQ(bp.size(), 3u);
  EXPECT_DOUBLE_EQ(bp[0], 5e-19);
  EXPECT_DOUBLE_EQ(bp[1], 1e-12);
  EXPECT_DOUBLE_EQ(bp[2], alias);
  // Far-apart points never merge: tol stays a vanishing fraction of t.
  EXPECT_LT(breakpoint_tol(4e-3), 1e-17);
  EXPECT_GE(breakpoint_tol(0.0), 1e-18);
}

TEST(CornerTransient, TopologyMismatchFallsBackPerLane) {
  const Circuit a =
      sample_cell(cells::CellType::kInv1, cells::Implementation::k2D);
  const Circuit b =
      sample_cell(cells::CellType::kNand2, cells::Implementation::k2D);
  TransientOptions topt;
  topt.t_stop = 1e-10;
  const CornerTransientResult group = corner_transient({&a, &b}, topt);
  ASSERT_TRUE(group.ok) << group.error;
  EXPECT_FALSE(group.lockstep);
  ASSERT_EQ(group.lanes.size(), 2u);
  EXPECT_TRUE(group.lanes[0].ok);
  EXPECT_TRUE(group.lanes[1].ok);
}

}  // namespace
}  // namespace mivtx::spice
