// Circuit data model, MNA stamps, Newton DC operating point, DC sweep.
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <string>

#include "bsimsoi/params.h"
#include "common/error.h"
#include "spice/circuit.h"
#include "spice/dcop.h"
#include "spice/mna.h"

namespace mivtx::spice {
namespace {

bsimsoi::SoiModelCard nch() {
  bsimsoi::SoiModelCard c;
  c.polarity = bsimsoi::Polarity::kNmos;
  c.vth0 = 0.35;
  c.l = 24e-9;
  c.w = 192e-9;
  return c;
}

bsimsoi::SoiModelCard pch() {
  bsimsoi::SoiModelCard c = nch();
  c.polarity = bsimsoi::Polarity::kPmos;
  c.vth0 = -0.35;
  c.u0 = 0.012;
  return c;
}

TEST(Circuit, NodeRegistry) {
  Circuit ckt;
  EXPECT_EQ(ckt.node("0"), kGround);
  EXPECT_EQ(ckt.node("GND"), kGround);
  const NodeId a = ckt.node("A");
  EXPECT_EQ(ckt.node("a"), a);  // case-insensitive
  EXPECT_NE(ckt.node("b"), a);
  EXPECT_EQ(ckt.num_nodes(), 3u);
  EXPECT_TRUE(ckt.has_node("A"));
  EXPECT_FALSE(ckt.has_node("zz"));
  EXPECT_THROW(ckt.find_node("zz"), Error);
  EXPECT_EQ(ckt.node_name(a), "a");
}

TEST(Circuit, RejectsDuplicateAndInvalidElements) {
  Circuit ckt;
  const NodeId a = ckt.node("a");
  ckt.add_resistor("R1", a, kGround, 10.0);
  EXPECT_THROW(ckt.add_resistor("r1", a, kGround, 5.0), Error);  // dup (ci)
  EXPECT_THROW(ckt.add_resistor("R2", a, kGround, -1.0), Error);
  EXPECT_THROW(ckt.add_capacitor("C1", a, kGround, 0.0), Error);
  EXPECT_THROW(ckt.element("nope"), Error);
}

TEST(Circuit, UnknownNameRoundTrip) {
  // Every MNA unknown maps back to its node name or "I(<element>)" through
  // the real node_unknown/branch_unknown relations; regression for the
  // LTE-reject debug path that assumed node_name(unknown + 1).
  Circuit ckt;
  const NodeId a = ckt.node("a"), b = ckt.node("b"), c = ckt.node("c");
  ckt.add_vsource("V1", a, kGround, SourceSpec::DC(1.0));
  ckt.add_resistor("R1", a, b, 10.0);
  ckt.add_inductor("L1", b, c, 1e-9);
  ckt.add_vcvs("E1", c, kGround, a, kGround, 2.0);
  EXPECT_EQ(ckt.unknown_name(ckt.node_unknown(a)), "a");
  EXPECT_EQ(ckt.unknown_name(ckt.node_unknown(b)), "b");
  EXPECT_EQ(ckt.unknown_name(ckt.node_unknown(c)), "c");
  EXPECT_EQ(ckt.unknown_name(ckt.branch_unknown(ckt.element("V1"))), "I(V1)");
  EXPECT_EQ(ckt.unknown_name(ckt.branch_unknown(ckt.element("L1"))), "I(L1)");
  EXPECT_EQ(ckt.unknown_name(ckt.branch_unknown(ckt.element("E1"))), "I(E1)");
  // Exhaustive: every unknown resolves, and to a distinct name.
  std::set<std::string> seen;
  for (std::size_t u = 0; u < ckt.system_size(); ++u)
    EXPECT_TRUE(seen.insert(ckt.unknown_name(u)).second) << u;
  EXPECT_EQ(seen.size(), ckt.system_size());
  EXPECT_THROW(ckt.unknown_name(ckt.system_size()), Error);
}

TEST(Circuit, SystemSizeCountsBranches) {
  Circuit ckt;
  const NodeId a = ckt.node("a"), b = ckt.node("b");
  ckt.add_vsource("V1", a, kGround, SourceSpec::DC(1.0));
  ckt.add_vsource("V2", b, kGround, SourceSpec::DC(2.0));
  ckt.add_resistor("R1", a, b, 10.0);
  EXPECT_EQ(ckt.system_size(), 4u);  // 2 nodes + 2 branches
  EXPECT_EQ(ckt.branch_unknown(ckt.element("V2")), 3u);
}

TEST(DcOp, VoltageDivider) {
  Circuit ckt;
  const NodeId in = ckt.node("in"), mid = ckt.node("mid");
  ckt.add_vsource("V1", in, kGround, SourceSpec::DC(9.0));
  ckt.add_resistor("R1", in, mid, 1000.0);
  ckt.add_resistor("R2", mid, kGround, 2000.0);
  const DcResult r = dc_operating_point(ckt);
  ASSERT_TRUE(r.converged);
  EXPECT_NEAR(solution_voltage(ckt, r.x, mid), 6.0, 1e-9);
  // Branch current: 9 V over 3 kOhm = 3 mA flowing + -> - internally, so
  // the source sees -3 mA.
  EXPECT_NEAR(solution_current(ckt, r.x, "V1"), -3e-3, 1e-9);
}

TEST(DcOp, CurrentSourceIntoResistor) {
  Circuit ckt;
  const NodeId a = ckt.node("a");
  // 2 mA pulled from ground through the source into node a.
  ckt.add_isource("I1", kGround, a, SourceSpec::DC(2e-3));
  ckt.add_resistor("R1", a, kGround, 500.0);
  const DcResult r = dc_operating_point(ckt);
  ASSERT_TRUE(r.converged);
  EXPECT_NEAR(solution_voltage(ckt, r.x, a), 1.0, 1e-9);
}

TEST(DcOp, FloatingCapacitorNodeHandledByLeak) {
  Circuit ckt;
  const NodeId a = ckt.node("a"), b = ckt.node("b");
  ckt.add_vsource("V1", a, kGround, SourceSpec::DC(1.0));
  ckt.add_capacitor("C1", a, b, 1e-15);  // b floats except via C leak
  // The pre-solve lint gate rejects capacitor-only nodes by default (see
  // DcOp.FloatingCapacitorNodeRejectedByLint); opting out falls back to the
  // tiny-leak stamp, which keeps the solve finite.
  NewtonOptions opts;
  opts.presolve_lint = false;
  const DcResult r = dc_operating_point(ckt, opts);
  ASSERT_TRUE(r.converged);
  EXPECT_TRUE(std::isfinite(solution_voltage(ckt, r.x, b)));
}

TEST(DcOp, InverterLogicLevels) {
  auto make = [&](double vin) {
    Circuit ckt;
    const NodeId vdd = ckt.node("vdd"), in = ckt.node("in"),
                 out = ckt.node("out");
    ckt.add_vsource("VDD", vdd, kGround, SourceSpec::DC(1.0));
    ckt.add_vsource("VIN", in, kGround, SourceSpec::DC(vin));
    ckt.add_mosfet("MN", out, in, kGround, nch());
    ckt.add_mosfet("MP", out, in, vdd, pch());
    const DcResult r = dc_operating_point(ckt);
    EXPECT_TRUE(r.converged);
    return solution_voltage(ckt, r.x, out);
  };
  EXPECT_GT(make(0.0), 0.99);
  EXPECT_LT(make(1.0), 0.01);
}

TEST(DcSweep, InverterVtcMonotone) {
  Circuit ckt;
  const NodeId vdd = ckt.node("vdd"), in = ckt.node("in"),
               out = ckt.node("out");
  ckt.add_vsource("VDD", vdd, kGround, SourceSpec::DC(1.0));
  ckt.add_vsource("VIN", in, kGround, SourceSpec::DC(0.0));
  ckt.add_mosfet("MN", out, in, kGround, nch());
  ckt.add_mosfet("MP", out, in, vdd, pch());

  std::vector<double> vins;
  for (double v = 0.0; v <= 1.001; v += 0.05) vins.push_back(v);
  const DcSweepResult sweep = dc_sweep(ckt, "VIN", vins);
  ASSERT_TRUE(sweep.converged);
  ASSERT_EQ(sweep.solutions.size(), vins.size());
  double prev = 2.0;
  const NodeId out_id = ckt.find_node("out");
  for (const auto& x : sweep.solutions) {
    const double vout = solution_voltage(ckt, x, out_id);
    EXPECT_LE(vout, prev + 1e-9);
    prev = vout;
  }
  // Full swing.
  EXPECT_GT(solution_voltage(ckt, sweep.solutions.front(), out_id), 0.99);
  EXPECT_LT(solution_voltage(ckt, sweep.solutions.back(), out_id), 0.01);
}

TEST(DcSweep, RequiresVoltageSourceTarget) {
  Circuit ckt;
  const NodeId a = ckt.node("a");
  ckt.add_resistor("R1", a, kGround, 1.0);
  ckt.add_isource("I1", kGround, a, SourceSpec::DC(1e-3));
  EXPECT_THROW(dc_sweep(ckt, "I1", {0.0, 1.0}), Error);
}

TEST(DcOp, NmosStackSeriesCurrentsConsistent) {
  // Two NMOS in series (NAND pulldown) both on: output pulls low.
  Circuit ckt;
  const NodeId vdd = ckt.node("vdd"), out = ckt.node("out"),
               x1 = ckt.node("x1");
  ckt.add_vsource("VDD", vdd, kGround, SourceSpec::DC(1.0));
  ckt.add_resistor("RL", vdd, out, 20e3);
  ckt.add_mosfet("M1", out, vdd, x1, nch());
  ckt.add_mosfet("M2", x1, vdd, kGround, nch());
  const DcResult r = dc_operating_point(ckt);
  ASSERT_TRUE(r.converged);
  const double vout = solution_voltage(ckt, r.x, out);
  const double vx1 = solution_voltage(ckt, r.x, x1);
  EXPECT_LT(vout, 0.3);
  EXPECT_LT(vx1, vout + 1e-12);
  EXPECT_GE(vx1, 0.0 - 1e-6);
}

TEST(Mna, ChargeSlotCount) {
  Circuit ckt;
  const NodeId a = ckt.node("a");
  ckt.add_capacitor("C1", a, kGround, 1e-15);
  ckt.add_mosfet("M1", a, a, kGround, nch());
  ckt.add_resistor("R1", a, kGround, 1.0);
  EXPECT_EQ(count_charge_slots(ckt), 4u);  // 1 cap + 3 mosfet terminals
}

TEST(Mna, EvaluateChargesMatchesModel) {
  Circuit ckt;
  const NodeId a = ckt.node("a");
  ckt.add_vsource("V1", a, kGround, SourceSpec::DC(0.7));
  ckt.add_capacitor("C1", a, kGround, 2e-15);
  const DcResult r = dc_operating_point(ckt);
  ASSERT_TRUE(r.converged);
  DynamicState st;
  evaluate_charges(ckt, r.x, st);
  ASSERT_EQ(st.q.size(), 1u);
  EXPECT_NEAR(st.q[0], 2e-15 * 0.7, 1e-20);
}

TEST(DcOp, GminSteppingStrategyStillSolves) {
  // A high-impedance MOSFET-only ladder is a gmin-stepping stress case;
  // whatever strategy wins, the solution must satisfy logic levels.
  Circuit ckt;
  const NodeId vdd = ckt.node("vdd");
  const NodeId n1 = ckt.node("n1"), n2 = ckt.node("n2"), n3 = ckt.node("n3");
  ckt.add_vsource("VDD", vdd, kGround, SourceSpec::DC(1.0));
  // Chain of 3 inverters, input tied low.
  const NodeId in = ckt.node("in");
  ckt.add_vsource("VIN", in, kGround, SourceSpec::DC(0.0));
  NodeId prev = in;
  const NodeId outs[3] = {n1, n2, n3};
  for (int i = 0; i < 3; ++i) {
    ckt.add_mosfet("MN" + std::to_string(i), outs[i], prev, kGround, nch());
    ckt.add_mosfet("MP" + std::to_string(i), outs[i], prev, vdd, pch());
    prev = outs[i];
  }
  const DcResult r = dc_operating_point(ckt);
  ASSERT_TRUE(r.converged);
  EXPECT_GT(solution_voltage(ckt, r.x, n1), 0.99);
  EXPECT_LT(solution_voltage(ckt, r.x, n2), 0.01);
  EXPECT_GT(solution_voltage(ckt, r.x, n3), 0.99);
}

}  // namespace
}  // namespace mivtx::spice
