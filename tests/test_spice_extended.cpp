// Extended SPICE elements: inductors (DC short, RL/RLC transients, AC
// resonance) and controlled sources (E/G), including parser coverage.
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"
#include "spice/ac.h"
#include "spice/parser.h"
#include "spice/transient.h"
#include "waveform/measure.h"

namespace mivtx::spice {
namespace {

TEST(Inductor, DcActsAsShort) {
  Circuit ckt;
  const NodeId in = ckt.node("in"), mid = ckt.node("mid");
  ckt.add_vsource("V1", in, kGround, SourceSpec::DC(2.0));
  ckt.add_resistor("R1", in, mid, 1000.0);
  ckt.add_inductor("L1", mid, kGround, 1e-6);
  const DcResult r = dc_operating_point(ckt);
  ASSERT_TRUE(r.converged);
  EXPECT_NEAR(solution_voltage(ckt, r.x, mid), 0.0, 1e-9);
  // Branch current through the inductor: 2 V / 1 kOhm.
  EXPECT_NEAR(r.x[ckt.branch_unknown(ckt.element("L1"))], 2e-3, 1e-9);
}

TEST(Inductor, RlStepCurrentRise) {
  // Series R-L driven by a step: i(t) = (V/R)(1 - exp(-t R/L)).
  const double r = 100.0, l = 1e-6;  // tau = 10 ns
  Circuit ckt;
  const NodeId in = ckt.node("in"), mid = ckt.node("mid");
  ckt.add_vsource("VIN", in, kGround,
                  SourceSpec::Pwl({{1e-9, 0.0}, {1.0000001e-9, 1.0}}));
  ckt.add_resistor("R1", in, mid, r);
  ckt.add_inductor("L1", mid, kGround, l);
  TransientOptions opts;
  opts.t_stop = 60e-9;
  opts.reltol = 1e-5;
  const TransientResult tr = transient(ckt, opts);
  ASSERT_TRUE(tr.ok) << tr.error;
  const double tau = l / r;
  // v(mid) = V exp(-t/tau) after the step; check at one and three taus.
  for (double dt : {tau, 3.0 * tau}) {
    const double expect = std::exp(-dt / tau);
    EXPECT_NEAR(tr.v("mid").sample(1e-9 + dt), expect, 5e-3) << dt;
  }
}

TEST(Inductor, RlcRingingFrequency) {
  // Underdamped series RLC: ringing frequency ~ 1/(2 pi sqrt(LC)).
  const double l = 1e-6, c = 1e-12, r = 50.0;  // f0 ~ 159 MHz, Q ~ 20
  Circuit ckt;
  const NodeId in = ckt.node("in"), mid = ckt.node("mid"),
               out = ckt.node("out");
  ckt.add_vsource("VIN", in, kGround,
                  SourceSpec::Pwl({{1e-9, 0.0}, {1.0000001e-9, 1.0}}));
  ckt.add_resistor("R1", in, mid, r);
  ckt.add_inductor("L1", mid, out, l);
  ckt.add_capacitor("C1", out, kGround, c);
  TransientOptions opts;
  opts.t_stop = 40e-9;
  opts.reltol = 1e-5;
  const TransientResult tr = transient(ckt, opts);
  ASSERT_TRUE(tr.ok) << tr.error;
  // Measure the period between the first two upward crossings of 1.0 (the
  // settled value) after the step.
  const auto crossings =
      waveform::find_crossings(tr.v("out"), 1.0, waveform::EdgeKind::kRise);
  ASSERT_GE(crossings.size(), 2u);
  const double period = crossings[1].time - crossings[0].time;
  const double f0 = 1.0 / (2.0 * M_PI * std::sqrt(l * c));
  EXPECT_NEAR(1.0 / period, f0, 0.05 * f0);
}

TEST(Inductor, AcResonanceOfSeriesRlc) {
  const double l = 1e-6, c = 1e-12, r = 50.0;
  const double f0 = 1.0 / (2.0 * M_PI * std::sqrt(l * c));
  Circuit ckt;
  const NodeId in = ckt.node("in"), mid = ckt.node("mid");
  ckt.add_vsource("VIN", in, kGround, SourceSpec::DC(0.0));
  ckt.add_resistor("R1", in, mid, r);
  ckt.add_inductor("L1", mid, ckt.node("cap"), l);
  ckt.add_capacitor("C1", ckt.find_node("cap"), kGround, c);
  const AcResult ac = ac_analysis(ckt, "VIN", {f0 / 10.0, f0, f0 * 10.0});
  ASSERT_TRUE(ac.ok);
  // At resonance the L-C reactances cancel: the full source drop appears
  // across R, so |V(cap)| = |Z_C| / R = Q.
  const double q = std::sqrt(l / c) / r;
  EXPECT_NEAR(ac.magnitude("cap", 1), q, 0.01 * q);
  // Off resonance the response is much smaller.
  EXPECT_LT(ac.magnitude("cap", 2), 0.2 * q);
}

TEST(Vcvs, AmplifiesDifferentialInput) {
  Circuit ckt;
  const NodeId a = ckt.node("a"), b = ckt.node("b"), out = ckt.node("out");
  ckt.add_vsource("VA", a, kGround, SourceSpec::DC(0.30));
  ckt.add_vsource("VB", b, kGround, SourceSpec::DC(0.10));
  ckt.add_vcvs("E1", out, kGround, a, b, 5.0);
  ckt.add_resistor("RL", out, kGround, 1e3);
  const DcResult r = dc_operating_point(ckt);
  ASSERT_TRUE(r.converged);
  EXPECT_NEAR(solution_voltage(ckt, r.x, out), 1.0, 1e-9);
}

TEST(Vccs, InjectsProportionalCurrent) {
  Circuit ckt;
  const NodeId c = ckt.node("c"), out = ckt.node("out");
  ckt.add_vsource("VC", c, kGround, SourceSpec::DC(0.5));
  // gm = 2 mS controlled by v(c): pulls 1 mA out of `out` into ground.
  ckt.add_vccs("G1", out, kGround, c, kGround, 2e-3);
  ckt.add_resistor("RB", out, kGround, 500.0);
  ckt.add_isource("IB", kGround, out, SourceSpec::DC(3e-3));
  const DcResult r = dc_operating_point(ckt);
  ASSERT_TRUE(r.converged);
  // KCL at out: 3 mA in = v/500 + 2e-3 * 0.5  ->  v = (3m - 1m)*500 = 1 V.
  EXPECT_NEAR(solution_voltage(ckt, r.x, out), 1.0, 1e-9);
}

TEST(Vcvs, IdealOpAmpFollowerViaLargeGain) {
  Circuit ckt;
  const NodeId in = ckt.node("in"), out = ckt.node("out");
  ckt.add_vsource("VIN", in, kGround, SourceSpec::DC(0.7));
  // E with huge gain, negative input tied to the output: follower.
  ckt.add_vcvs("E1", out, kGround, in, out, 1e6);
  ckt.add_resistor("RL", out, kGround, 1e3);
  const DcResult r = dc_operating_point(ckt);
  ASSERT_TRUE(r.converged);
  EXPECT_NEAR(solution_voltage(ckt, r.x, out), 0.7, 1e-5);
}

TEST(Parser, ParsesLegElements) {
  const std::string net = R"(rlc with deps
VIN in 0 DC 1.0
R1 in mid 50
L1 mid cap 1u
C1 cap 0 1p
E1 amp 0 cap 0 3.0
G1 0 sink amp 0 1m
Rsink sink 0 100
.end
)";
  const ParsedNetlist p = parse_netlist(net);
  EXPECT_EQ(p.circuit.element("L1").kind, ElementKind::kInductor);
  EXPECT_DOUBLE_EQ(p.circuit.element("L1").value, 1e-6);
  EXPECT_EQ(p.circuit.element("E1").kind, ElementKind::kVcvs);
  EXPECT_DOUBLE_EQ(p.circuit.element("E1").value, 3.0);
  EXPECT_EQ(p.circuit.element("G1").kind, ElementKind::kVccs);
  // Branch unknowns: VIN, L1, E1.
  EXPECT_EQ(p.circuit.num_branches(), 3u);
  const DcResult r = dc_operating_point(p.circuit);
  ASSERT_TRUE(r.converged);
  // DC: inductor short, cap open -> v(cap) = 1, amp = 3.
  EXPECT_NEAR(
      solution_voltage(p.circuit, r.x, p.circuit.find_node("amp")), 3.0,
      1e-6);
}

TEST(Parser, LegErrors) {
  EXPECT_THROW(parse_netlist("t\nL1 a 0\n.end\n"), Error);
  EXPECT_THROW(parse_netlist("t\nE1 a 0 b\n.end\n"), Error);
  EXPECT_THROW(parse_netlist("t\nG1 a 0 b 0\n.end\n"), Error);
}

}  // namespace
}  // namespace mivtx::spice
