// Netlist text parser and source specifications.
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"
#include "spice/parser.h"
#include "spice/source.h"

namespace mivtx::spice {
namespace {

TEST(Source, DcValue) {
  const SourceSpec s = SourceSpec::DC(1.5);
  EXPECT_DOUBLE_EQ(s.value(0.0), 1.5);
  EXPECT_DOUBLE_EQ(s.value(1e-9), 1.5);
}

TEST(Source, PulseShape) {
  PulseSpec p;
  p.v1 = 0.0;
  p.v2 = 1.0;
  p.delay = 1e-9;
  p.rise = 1e-10;
  p.fall = 2e-10;
  p.width = 5e-10;
  const SourceSpec s = SourceSpec::Pulse(p);
  EXPECT_DOUBLE_EQ(s.value(0.0), 0.0);
  EXPECT_DOUBLE_EQ(s.value(0.9e-9), 0.0);
  EXPECT_NEAR(s.value(1.05e-9), 0.5, 1e-12);    // mid-rise
  EXPECT_DOUBLE_EQ(s.value(1.3e-9), 1.0);       // plateau
  EXPECT_NEAR(s.value(1.7e-9), 0.5, 1e-12);     // mid-fall
  EXPECT_DOUBLE_EQ(s.value(3e-9), 0.0);
}

TEST(Source, PulsePeriodic) {
  PulseSpec p;
  p.v1 = 0.0;
  p.v2 = 1.0;
  p.delay = 0.0;
  p.rise = 1e-10;
  p.fall = 1e-10;
  p.width = 3e-10;
  p.period = 1e-9;
  const SourceSpec s = SourceSpec::Pulse(p);
  EXPECT_NEAR(s.value(0.2e-9), s.value(1.2e-9), 1e-12);
  EXPECT_NEAR(s.value(0.05e-9), s.value(2.05e-9), 1e-12);
}

TEST(Source, PwlInterpolatesAndClamps) {
  const SourceSpec s = SourceSpec::Pwl({{1.0, 0.0}, {2.0, 10.0}, {4.0, 10.0}});
  EXPECT_DOUBLE_EQ(s.value(0.5), 0.0);
  EXPECT_DOUBLE_EQ(s.value(1.5), 5.0);
  EXPECT_DOUBLE_EQ(s.value(3.0), 10.0);
  EXPECT_DOUBLE_EQ(s.value(9.0), 10.0);
  EXPECT_THROW(SourceSpec::Pwl({{1.0, 0.0}, {1.0, 1.0}}), Error);
  EXPECT_THROW(SourceSpec::Pwl({}), Error);
}

TEST(Source, SinValue) {
  const SourceSpec s = SourceSpec::Sin(0.5, 0.25, 1e6);
  EXPECT_NEAR(s.value(0.0), 0.5, 1e-12);
  EXPECT_NEAR(s.value(0.25e-6), 0.75, 1e-9);
}

TEST(Source, Breakpoints) {
  PulseSpec p;
  p.v1 = 0;
  p.v2 = 1;
  p.delay = 1e-9;
  p.rise = 1e-10;
  p.fall = 1e-10;
  p.width = 5e-10;
  const SourceSpec s = SourceSpec::Pulse(p);
  std::vector<double> bp;
  s.collect_breakpoints(1e-8, bp);
  ASSERT_EQ(bp.size(), 4u);
  EXPECT_DOUBLE_EQ(bp[0], 1e-9);
  EXPECT_DOUBLE_EQ(bp[1], 1.1e-9);
  EXPECT_DOUBLE_EQ(bp[2], 1.6e-9);
  EXPECT_DOUBLE_EQ(bp[3], 1.7e-9);
  bp.clear();
  SourceSpec::DC(1.0).collect_breakpoints(1e-8, bp);
  EXPECT_TRUE(bp.empty());
}

TEST(Parser, FullInverterNetlist) {
  const std::string net = R"(my inverter
* a comment line
.model nch nmos LEVEL=70 VTH0=0.35 L=24n W=192n
.model pch pmos LEVEL=70 VTH0=-0.35 L=24n W=192n U0=0.012
VDD vdd 0 DC 1.0
VIN in 0 PULSE(0 1 100p 10p 10p 400p)
M1 out in 0 nch
M2 out in vdd pch
C1 out 0 1f
R1 out mid 3
.tran 1p 1n
.end
)";
  const ParsedNetlist p = parse_netlist(net);
  EXPECT_EQ(p.title, "my inverter");
  EXPECT_EQ(p.circuit.elements().size(), 6u);
  EXPECT_EQ(p.circuit.num_vsources(), 2u);
  ASSERT_EQ(p.directives.size(), 1u);
  EXPECT_EQ(p.directives[0], ".tran 1p 1n");
  const Element& m1 = p.circuit.element("M1");
  EXPECT_EQ(m1.kind, ElementKind::kMosfet);
  EXPECT_EQ(m1.model.polarity, bsimsoi::Polarity::kNmos);
  EXPECT_DOUBLE_EQ(m1.model.l, 24e-9);
  const Element& vin = p.circuit.element("VIN");
  EXPECT_EQ(vin.source.kind, SourceKind::kPulse);
  EXPECT_DOUBLE_EQ(vin.source.pulse.delay, 100e-12);
  const Element& c1 = p.circuit.element("C1");
  EXPECT_DOUBLE_EQ(c1.value, 1e-15);
}

TEST(Parser, ContinuationLines) {
  const std::string net = R"(title
VIN in 0
+ PULSE(0 1
+ 100p 10p 10p 400p)
R1 in 0 50
.end
)";
  const ParsedNetlist p = parse_netlist(net);
  const Element& vin = p.circuit.element("VIN");
  EXPECT_EQ(vin.source.kind, SourceKind::kPulse);
  EXPECT_DOUBLE_EQ(vin.source.pulse.width, 400e-12);
}

TEST(Parser, InstanceParameterOverride) {
  const std::string net = R"(title
.model nch nmos LEVEL=70 VTH0=0.35 W=192n
V1 d 0 DC 1.0
M1 d d 0 nch W=96n NF=2
.end
)";
  const ParsedNetlist p = parse_netlist(net);
  const Element& m1 = p.circuit.element("M1");
  EXPECT_DOUBLE_EQ(m1.model.w, 96e-9);
  EXPECT_EQ(m1.model.nf, 2);
  EXPECT_DOUBLE_EQ(m1.model.vth0, 0.35);  // inherited
}

TEST(Parser, DollarAndSemicolonComments) {
  const std::string net = "t\nR1 a 0 10 $ inline\nR2 a 0 20 ; also\n.end\n";
  const ParsedNetlist p = parse_netlist(net);
  EXPECT_EQ(p.circuit.elements().size(), 2u);
}

TEST(Parser, ModelBeforeOrAfterUseBothWork) {
  const std::string net = R"(title
M1 d g 0 late
V1 d 0 1.0
V2 g 0 1.0
.model late nmos LEVEL=70 VTH0=0.3
.end
)";
  const ParsedNetlist p = parse_netlist(net);
  EXPECT_DOUBLE_EQ(p.circuit.element("M1").model.vth0, 0.3);
}

TEST(Parser, Errors) {
  EXPECT_THROW(parse_netlist("t\nR1 a 0\n.end\n"), Error);       // short R
  EXPECT_THROW(parse_netlist("t\nM1 d g 0 nope\n.end\n"), Error);  // no model
  EXPECT_THROW(parse_netlist("t\nX1 a b sub\n.end\n"), Error);   // unsupported
  EXPECT_THROW(parse_netlist("t\nV1 a 0 PULSE(0 1)\n.end\n"), Error);
  EXPECT_THROW(parse_netlist(""), Error);
  EXPECT_THROW(parse_netlist("+cont\n.end\n"), Error);
}

TEST(Parser, StopsAtEnd) {
  const std::string net = "t\nR1 a 0 10\n.end\nR2 a 0 20\n";
  const ParsedNetlist p = parse_netlist(net);
  EXPECT_EQ(p.circuit.elements().size(), 1u);
}

}  // namespace
}  // namespace mivtx::spice
