// Sparse-first solver core: SparseLU against DenseLU, assembly-plan
// against dense assembly, and full dense-vs-sparse backend equivalence
// over all 14 standard cells x 4 implementations (DC operating point and
// transient endpoints), plus singular-system parity and the workspace
// allocation/metrics contract.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "cells/netgen.h"
#include "common/rng.h"
#include "core/ppa.h"
#include "core/reference_cards.h"
#include "linalg/batch_lu.h"
#include "linalg/dense.h"
#include "linalg/sparse_lu.h"
#include "runtime/metrics.h"
#include "spice/assembly_plan.h"
#include "spice/solver_workspace.h"
#include "spice/transient.h"

namespace mivtx::spice {
namespace {

// ---------------------------------------------------------------------------
// SparseLU kernel vs DenseLU.

// Random diagonally-dominant system on a banded-ish pattern, returned as
// CSR the way AssemblyPlan hands it to the LU.
struct CsrSystem {
  std::size_t n = 0;
  std::vector<std::size_t> row_ptr, col_idx;
  std::vector<double> values;
};

CsrSystem random_system(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  CsrSystem s;
  s.n = n;
  s.row_ptr.push_back(0);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < n; ++c) {
      const bool diag = c == r;
      const bool band = c + 3 > r && c < r + 3;
      const bool stray = ((r * 31 + c * 17) % 11) == 0;
      if (!diag && !band && !stray) continue;
      s.col_idx.push_back(c);
      s.values.push_back(diag ? 6.0 + rng.uniform(0, 1) : rng.uniform(-1, 1));
    }
    s.row_ptr.push_back(s.col_idx.size());
  }
  return s;
}

linalg::DenseMatrix densify(const CsrSystem& s) {
  linalg::DenseMatrix m(s.n, s.n);
  for (std::size_t r = 0; r < s.n; ++r)
    for (std::size_t p = s.row_ptr[r]; p < s.row_ptr[r + 1]; ++p)
      m(r, s.col_idx[p]) = s.values[p];
  return m;
}

double max_abs_diff(const linalg::Vector& a, const linalg::Vector& b) {
  double d = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i)
    d = std::max(d, std::fabs(a[i] - b[i]));
  return d;
}

TEST(SparseLU, MatchesDenseLU) {
  for (const std::size_t n : {std::size_t{4}, std::size_t{17}, std::size_t{60}}) {
    const CsrSystem s = random_system(n, 7 + n);
    linalg::SparseLU lu;
    lu.analyze(s.n, s.row_ptr, s.col_idx);
    ASSERT_TRUE(lu.factorize(s.values));
    linalg::Vector b(n);
    for (std::size_t i = 0; i < n; ++i) b[i] = std::sin(double(i) + 1.0);
    linalg::Vector bd = b;
    lu.solve(b);
    const linalg::Vector xd = linalg::DenseLU(densify(s)).solve(bd);
    EXPECT_LT(max_abs_diff(b, xd), 1e-9) << "n=" << n;
  }
}

TEST(SparseLU, RefactorizeReplaysNewValues) {
  CsrSystem s = random_system(24, 99);
  linalg::SparseLU lu;
  lu.analyze(s.n, s.row_ptr, s.col_idx);
  ASSERT_TRUE(lu.factorize(s.values));
  // Perturb the values on the fixed pattern (a Newton re-linearization)
  // and replay numerically: no fresh pivoting, same answers as scratch.
  Rng rng(5);
  for (double& v : s.values) v += 0.05 * rng.uniform(-1, 1);
  ASSERT_TRUE(lu.refactorize(s.values));
  linalg::Vector b(s.n, 1.0), bd = b;
  lu.solve(b);
  const linalg::Vector xd = linalg::DenseLU(densify(s)).solve(bd);
  EXPECT_LT(max_abs_diff(b, xd), 1e-9);
}

TEST(SparseLU, RefactorizeRejectsDegradedPivots) {
  // Make a previously comfortable pivot collapse so the recorded pivot row
  // no longer dominates its column: refactorize must refuse (and require a
  // fresh factorize()) rather than divide by a tiny pivot.
  CsrSystem s = random_system(12, 3);
  linalg::SparseLU lu;
  lu.analyze(s.n, s.row_ptr, s.col_idx);
  ASSERT_TRUE(lu.factorize(s.values));
  for (std::size_t r = 0; r < s.n; ++r)
    for (std::size_t p = s.row_ptr[r]; p < s.row_ptr[r + 1]; ++p)
      if (s.col_idx[p] == r) s.values[p] = r == 5 ? 1e-14 : s.values[p];
  const bool replayed = lu.refactorize(s.values);
  if (!replayed) {
    EXPECT_FALSE(lu.factorized());
    EXPECT_TRUE(lu.factorize(s.values));
  }
  // Either way a subsequent solve matches dense.
  linalg::Vector b(s.n, 1.0), bd = b;
  lu.solve(b);
  const linalg::Vector xd = linalg::DenseLU(densify(s)).solve(bd);
  EXPECT_LT(max_abs_diff(b, xd), 1e-7);
}

TEST(SparseLU, SingularReportsFailure) {
  CsrSystem s = random_system(10, 11);
  // Zero out an entire row: exactly singular.
  for (std::size_t p = s.row_ptr[4]; p < s.row_ptr[5]; ++p) s.values[p] = 0.0;
  linalg::SparseLU lu;
  lu.analyze(s.n, s.row_ptr, s.col_idx);
  EXPECT_FALSE(lu.factorize(s.values));
  EXPECT_FALSE(lu.factorized());
}

// ---------------------------------------------------------------------------
// Lane-packed LU (BatchSparseLU) vs per-lane scalar.

// K perturbed copies of a base system packed lane-minor, pads replicating
// lane 0 the way the corner engine fills them.
std::vector<double> pack_lanes(const std::vector<std::vector<double>>& lanes,
                               std::size_t stride) {
  const std::size_t nnz = lanes[0].size();
  std::vector<double> soa(nnz * stride);
  for (std::size_t e = 0; e < nnz; ++e)
    for (std::size_t j = 0; j < stride; ++j)
      soa[e * stride + j] = lanes[j < lanes.size() ? j : 0][e];
  return soa;
}

TEST(BatchSparseLU, MatchesPerLaneDense) {
  const std::size_t n = 17, kLanes = 5;  // 5 lanes -> stride 8, one pad block
  const CsrSystem base = random_system(n, 21);
  linalg::SparseLU ref;
  ref.analyze(n, base.row_ptr, base.col_idx);
  ASSERT_TRUE(ref.factorize(base.values));

  std::vector<std::vector<double>> lanes(kLanes, base.values);
  Rng rng(77);
  for (std::size_t j = 1; j < kLanes; ++j)
    for (double& v : lanes[j]) v += 0.02 * rng.uniform(-1, 1);

  linalg::BatchSparseLU batch;
  batch.bind(ref, kLanes, true);
  ASSERT_EQ(batch.stride(), 8u);
  const std::size_t stride = batch.stride();
  const std::vector<double> soa = pack_lanes(lanes, stride);
  std::vector<unsigned char> ok(stride, 0);
  ASSERT_TRUE(batch.refactorize(soa.data(), ok.data()));

  std::vector<double> b(n * stride);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < stride; ++j)
      b[i * stride + j] = std::sin(double(i) + 0.3 * double(j) + 1.0);
  std::vector<double> rhs = b;
  batch.solve(b.data());

  for (std::size_t j = 0; j < kLanes; ++j) {
    CsrSystem s = base;
    s.values = lanes[j];
    linalg::Vector bj(n);
    for (std::size_t i = 0; i < n; ++i) bj[i] = rhs[i * stride + j];
    const linalg::Vector xd = linalg::DenseLU(densify(s)).solve(bj);
    double diff = 0.0;
    for (std::size_t i = 0; i < n; ++i)
      diff = std::max(diff, std::fabs(b[i * stride + j] - xd[i]));
    EXPECT_LT(diff, 1e-9) << "lane " << j;
  }
}

TEST(BatchSparseLU, FlagsDegradedLaneOthersUnaffected) {
  const std::size_t n = 12, kLanes = 4;
  const CsrSystem base = random_system(n, 3);
  linalg::SparseLU ref;
  ref.analyze(n, base.row_ptr, base.col_idx);
  ASSERT_TRUE(ref.factorize(base.values));

  // Collapse lane 1's row-5 diagonal exactly like the scalar degradation
  // test; the batch verdict for that lane must match scalar refactorize.
  std::vector<std::vector<double>> lanes(kLanes, base.values);
  for (std::size_t r = 0; r < n; ++r)
    for (std::size_t p = base.row_ptr[r]; p < base.row_ptr[r + 1]; ++p)
      if (base.col_idx[p] == r && r == 5) lanes[1][p] = 1e-14;

  linalg::SparseLU scalar;
  scalar.analyze(n, base.row_ptr, base.col_idx);
  ASSERT_TRUE(scalar.factorize(base.values));
  const bool scalar_accepts = scalar.refactorize(lanes[1]);

  linalg::BatchSparseLU batch;
  batch.bind(ref, kLanes, true);
  const std::size_t stride = batch.stride();
  const std::vector<double> soa = pack_lanes(lanes, stride);
  std::vector<unsigned char> ok(stride, 0);
  const bool all = batch.refactorize(soa.data(), ok.data());
  EXPECT_EQ(all, scalar_accepts);
  EXPECT_EQ(ok[1] != 0, scalar_accepts);
  EXPECT_NE(ok[0], 0);
  EXPECT_NE(ok[2], 0);
  EXPECT_NE(ok[3], 0);

  // Healthy lanes still solve to the dense answer.
  std::vector<double> b(n * stride, 1.0);
  batch.solve(b.data());
  for (const std::size_t j : {std::size_t{0}, std::size_t{2}}) {
    CsrSystem s = base;
    s.values = lanes[j];
    linalg::Vector bj(n, 1.0);
    const linalg::Vector xd = linalg::DenseLU(densify(s)).solve(bj);
    double diff = 0.0;
    for (std::size_t i = 0; i < n; ++i)
      diff = std::max(diff, std::fabs(b[i * stride + j] - xd[i]));
    EXPECT_LT(diff, 1e-9) << "lane " << j;
  }
}

TEST(BatchSparseLU, PortableAndSimdKernelsAgree) {
  if (!linalg::batchlu::avx2_compiled() || !linalg::batchlu::cpu_has_avx2())
    GTEST_SKIP() << "AVX2 lane-packed LU not available";
  const std::size_t n = 24, kLanes = 8;
  const CsrSystem base = random_system(n, 55);
  linalg::SparseLU ref;
  ref.analyze(n, base.row_ptr, base.col_idx);
  ASSERT_TRUE(ref.factorize(base.values));
  std::vector<std::vector<double>> lanes(kLanes, base.values);
  Rng rng(13);
  for (std::size_t j = 0; j < kLanes; ++j)
    for (double& v : lanes[j]) v += 0.01 * rng.uniform(-1, 1);
  const std::vector<double> soa = pack_lanes(lanes, kLanes);

  linalg::BatchSparseLU portable, simd;
  portable.bind(ref, kLanes, false);
  simd.bind(ref, kLanes, true);
  ASSERT_FALSE(portable.simd_active());
  ASSERT_TRUE(simd.simd_active());
  std::vector<unsigned char> ok_p(kLanes, 0), ok_s(kLanes, 0);
  ASSERT_TRUE(portable.refactorize(soa.data(), ok_p.data()));
  ASSERT_TRUE(simd.refactorize(soa.data(), ok_s.data()));
  std::vector<double> bp(n * kLanes), bs;
  for (std::size_t i = 0; i < bp.size(); ++i)
    bp[i] = std::cos(0.1 * double(i));
  bs = bp;
  portable.solve(bp.data());
  simd.solve(bs.data());
  // FMA contraction separates the two kernels by rounding only.
  for (std::size_t i = 0; i < bp.size(); ++i)
    EXPECT_NEAR(bp[i], bs[i], 1e-12 * (1.0 + std::fabs(bp[i]))) << "slot " << i;
}

// ---------------------------------------------------------------------------
// Assembly plan: slot-directed CSR writes vs the dense assembler.

spice::Circuit sample_cell(cells::CellType type, cells::Implementation impl) {
  const core::PpaEngine engine(core::reference_model_library());
  cells::CellNetlist cell = cells::build_cell(
      type, impl, engine.model_set(impl), cells::ParasiticSpec{}, 1.0);
  const std::vector<std::string> inputs = cells::cell_input_names(type);
  const auto side = core::PpaEngine::sensitize(type, 0);
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    spice::Element& src = cell.circuit.element("V" + inputs[i]);
    if (i == 0) {
      spice::PulseSpec p;
      p.v1 = 0.0;
      p.v2 = 1.0;
      p.delay = 20e-12;
      p.rise = 20e-12;
      p.fall = 20e-12;
      p.width = 100e-12;
      src.source = spice::SourceSpec::Pulse(p);
    } else {
      src.source =
          spice::SourceSpec::DC(side.has_value() && (*side)[i] ? 1.0 : 0.0);
    }
  }
  return cell.circuit;
}

TEST(AssemblyPlan, SparseMatchesDenseAssembly) {
  const Circuit ckt = sample_cell(cells::CellType::kNand2,
                                  cells::Implementation::k2D);
  const std::size_t n = ckt.system_size();
  Rng rng(17);
  linalg::Vector x(n);
  for (std::size_t i = 0; i < n; ++i) x[i] = rng.uniform(0, 1);

  DynamicState prev;
  evaluate_charges(ckt, x, prev);
  prev.iq.assign(prev.q.size(), 0.0);

  const AssemblyPlan plan(ckt);
  ASSERT_EQ(plan.size(), n);
  std::vector<double> values;
  linalg::Vector f_sparse, f_dense;
  linalg::DenseMatrix jac;

  for (const bool dynamic : {false, true}) {
    AssemblyContext ctx;
    if (dynamic) {
      ctx.integrator = Integrator::kBdf2;
      ctx.h = 1e-12;
      ctx.step_ratio = 0.8;
      ctx.prev = &prev;
      ctx.prev2 = &prev;
      ctx.time = 1e-12;
    }
    assemble(ckt, x, ctx, jac, f_dense, nullptr);
    assemble_sparse(ckt, plan, x, ctx, values, f_sparse, nullptr, nullptr);
    EXPECT_LT(max_abs_diff(f_sparse, f_dense), 1e-12);
    // Every CSR slot must match the dense entry; every dense entry off the
    // pattern must be zero.
    double jmax = 0.0;
    for (std::size_t r = 0; r < n; ++r) {
      std::size_t p = plan.row_ptr()[r];
      for (std::size_t c = 0; c < n; ++c) {
        double v = 0.0;
        if (p < plan.row_ptr()[r + 1] && plan.col_idx()[p] == c) v = values[p++];
        jmax = std::max(jmax, std::fabs(v - jac(r, c)));
      }
    }
    EXPECT_LT(jmax, 1e-12) << "dynamic=" << dynamic;
  }
}

// ---------------------------------------------------------------------------
// Backend equivalence over the full cell library.

// Tight tolerances pin both backends to the same converged points so the
// 1e-9 cross-backend comparison measures the solver core, not Newton
// slack; bypass_vtol = 0 keeps the device cache to exact-repeat hits.
NewtonOptions strict_newton(SolverBackend backend) {
  NewtonOptions o;
  o.backend = backend;
  o.vtol = 1e-12;
  o.reltol = 1e-9;
  o.itol = 1e-15;
  o.residual_tol = 1e-9;
  o.bypass_vtol = 0.0;
  return o;
}

TEST(BackendEquivalence, DcopAllCellsAllImplementations) {
  for (const cells::CellType type : cells::all_cells()) {
    for (const cells::Implementation impl : cells::all_implementations()) {
      const Circuit ckt = sample_cell(type, impl);
      const DcResult dense =
          dc_operating_point(ckt, strict_newton(SolverBackend::kDense));
      const DcResult sparse =
          dc_operating_point(ckt, strict_newton(SolverBackend::kSparse));
      ASSERT_TRUE(dense.converged)
          << cells::cell_name(type) << "/" << cells::impl_name(impl);
      ASSERT_TRUE(sparse.converged)
          << cells::cell_name(type) << "/" << cells::impl_name(impl);
      EXPECT_LT(max_abs_diff(dense.x, sparse.x), 1e-9)
          << cells::cell_name(type) << "/" << cells::impl_name(impl);
    }
  }
}

TEST(BackendEquivalence, TransientEndpointsAllCellsAllImplementations) {
  for (const cells::CellType type : cells::all_cells()) {
    for (const cells::Implementation impl : cells::all_implementations()) {
      const Circuit ckt = sample_cell(type, impl);
      TransientOptions topt;
      topt.t_stop = 1e-10;  // covers the rising input edge
      topt.newton = strict_newton(SolverBackend::kDense);
      const TransientResult dense = transient(ckt, topt);
      topt.newton = strict_newton(SolverBackend::kSparse);
      const TransientResult sparse = transient(ckt, topt);
      ASSERT_TRUE(dense.ok)
          << cells::cell_name(type) << "/" << cells::impl_name(impl);
      ASSERT_TRUE(sparse.ok)
          << cells::cell_name(type) << "/" << cells::impl_name(impl);
      for (const auto& [node, wave] : dense.node_voltage) {
        const auto it = sparse.node_voltage.find(node);
        ASSERT_NE(it, sparse.node_voltage.end()) << node;
        ASSERT_FALSE(wave.empty());
        ASSERT_FALSE(it->second.empty());
        EXPECT_NEAR(wave.t_end(), it->second.t_end(), 1e-18);
        EXPECT_NEAR(wave.value(wave.size() - 1),
                    it->second.value(it->second.size() - 1), 1e-9)
            << cells::cell_name(type) << "/" << cells::impl_name(impl)
            << " node " << node;
      }
    }
  }
}

TEST(BackendEquivalence, DefaultOptionsBypassStaysAccurate) {
  // With stock NewtonOptions (bypass_vtol = 1e-9) the sparse core serves
  // some MOSFET evaluations from the cache; the answers must stay within
  // everyday SPICE accuracy of the dense path.
  const Circuit ckt =
      sample_cell(cells::CellType::kXor2, cells::Implementation::k2D);
  TransientOptions topt;
  topt.t_stop = 1e-10;
  topt.newton.backend = SolverBackend::kDense;
  const TransientResult dense = transient(ckt, topt);
  topt.newton.backend = SolverBackend::kSparse;

  runtime::Metrics::global().reset();
  const TransientResult sparse = transient(ckt, topt);
  ASSERT_TRUE(dense.ok);
  ASSERT_TRUE(sparse.ok);
  EXPECT_GT(runtime::Metrics::global().counter_total("spice.device.bypasses"),
            0.0);
  for (const auto& [node, wave] : dense.node_voltage) {
    const auto& sw = sparse.node_voltage.at(node);
    EXPECT_NEAR(wave.value(wave.size() - 1), sw.value(sw.size() - 1), 1e-6)
        << node;
  }
}

TEST(BackendEquivalence, SingularCircuitFailsOnBothBackends) {
  // Two ideal current sources in series leave the middle node with no DC
  // path: the Jacobian is structurally singular.  Both backends must
  // report clean non-convergence (the sparse core after walking its
  // full fallback ladder), not crash or diverge.
  Circuit ckt;
  const NodeId a = ckt.node("a"), b = ckt.node("b");
  ckt.add_isource("I1", kGround, a, SourceSpec::DC(1e-6));
  ckt.add_isource("I2", a, b, SourceSpec::DC(1e-6));
  ckt.add_resistor("R1", b, kGround, 1e3);
  for (const SolverBackend backend :
       {SolverBackend::kDense, SolverBackend::kSparse}) {
    NewtonOptions o = strict_newton(backend);
    o.presolve_lint = false;  // exercise the numeric failure path
    const DcResult r = dc_operating_point(ckt, o);
    EXPECT_FALSE(r.converged) << "backend=" << static_cast<int>(backend);
  }
}

// ---------------------------------------------------------------------------
// Workspace contract: no steady-state allocations, sane metric ordering.

TEST(SolverWorkspace, TransientRunIsAllocationFreeWithOrderedCounters) {
  const Circuit ckt =
      sample_cell(cells::CellType::kXor2, cells::Implementation::k2D);
  TransientOptions topt;
  topt.t_stop = 2e-10;
  topt.newton.backend = SolverBackend::kSparse;

  runtime::Metrics::global().reset();
  const TransientResult tr = transient(ckt, topt);
  ASSERT_TRUE(tr.ok);

  const runtime::Metrics& m = runtime::Metrics::global();
  const double symbolic = m.counter_total("spice.sparse.symbolic_analyses");
  const double full = m.counter_total("spice.sparse.full_factorizations");
  const double refactor = m.counter_total("spice.sparse.refactorizations");
  const double newton = m.counter_total("spice.newton.iterations");
  EXPECT_EQ(symbolic, 1.0);  // one workspace, one analysis for the run
  EXPECT_GE(full, 1.0);
  // The reuse ladder: symbolic << full factorizations << refactorizations
  // <= Newton iterations.
  EXPECT_LT(symbolic, full + 1.0);
  EXPECT_LT(full * 10.0, refactor);
  EXPECT_LE(refactor, newton);
  // All buffers are sized at construction; the inner loops never grow them.
  EXPECT_EQ(m.counter_total("spice.workspace.allocations"), 0.0);
}

TEST(SolverWorkspace, DeviceCounterAccountingIsConsistent) {
  // The per-analysis-kind device counters must partition the totals, and
  // in batch mode every fresh eval must have gone through a kernel lane.
  const Circuit ckt =
      sample_cell(cells::CellType::kNand2, cells::Implementation::k2D);
  TransientOptions topt;
  topt.t_stop = 2e-10;
  topt.newton.backend = SolverBackend::kSparse;

  runtime::Metrics::global().reset();
  ASSERT_TRUE(transient(ckt, topt).ok);
  const runtime::Metrics& m = runtime::Metrics::global();
  const double evals = m.counter_total("spice.device.evals");
  const double bypasses = m.counter_total("spice.device.bypasses");
  EXPECT_GT(evals, 0.0);
  EXPECT_GT(bypasses, 0.0);
  EXPECT_EQ(evals, m.counter_total("spice.device.evals.dc") +
                       m.counter_total("spice.device.evals.tran"));
  EXPECT_EQ(bypasses, m.counter_total("spice.device.bypasses.dc") +
                          m.counter_total("spice.device.bypasses.tran"));
  // Both analysis kinds actually ran (t=0 dcop + companion-model steps).
  EXPECT_GT(m.counter_total("spice.device.evals.dc"), 0.0);
  EXPECT_GT(m.counter_total("spice.device.evals.tran"), 0.0);
  // Default device_eval = kAuto batches on the sparse backend: every
  // fresh eval is a staged kernel lane, and the dispatched blocks cover
  // the lanes without exceeding one partial block per kernel pass.
  const double lanes = m.counter_total("spice.device.batch.lanes");
  const double blocks = m.counter_total("spice.device.batch.blocks");
  const double passes = m.counter_total("spice.device.batch.evals");
  EXPECT_EQ(lanes, evals);
  EXPECT_GE(blocks * 4.0, lanes);
  EXPECT_LT(blocks, lanes / 4.0 + passes + 1.0);

  // The scalar reference path keeps the same totals split but never
  // touches the batch counters.
  runtime::Metrics::global().reset();
  topt.newton.device_eval = DeviceEval::kScalar;
  ASSERT_TRUE(transient(ckt, topt).ok);
  EXPECT_EQ(m.counter_total("spice.device.batch.evals"), 0.0);
  EXPECT_EQ(m.counter_total("spice.device.batch.lanes"), 0.0);
  EXPECT_EQ(m.counter_total("spice.device.evals"),
            m.counter_total("spice.device.evals.dc") +
                m.counter_total("spice.device.evals.tran"));
}

TEST(SolverWorkspace, ReuseLadderKeysOnGminButNotSourceScale) {
  // The bitwise-reuse rung is keyed on the coefficient regime (gmin, h,
  // step_ratio, integrator) plus fresh device stamps.  gmin is part of
  // the assembled Jacobian (a diagonal stamp), so a gmin-stepping stage
  // change MUST invalidate the reuse — a stale hit would solve the new
  // system with the old stage's factorization.  source_scale, by
  // contrast, scales only the independent sources (residual side), so
  // source stepping legitimately rides one factorization end to end.
  Circuit ckt;
  const NodeId vdd = ckt.node("vdd"), out = ckt.node("out");
  ckt.add_vsource("VDD", vdd, kGround, SourceSpec::DC(1.0));
  ckt.add_resistor("R1", vdd, out, 1e3);
  ckt.add_resistor("R2", out, kGround, 1e3);
  NewtonOptions o;
  o.backend = SolverBackend::kSparse;
  SolverWorkspace ws(ckt, o);
  const std::size_t n = ckt.system_size();
  linalg::Vector x(n, 0.0);
  linalg::Vector rhs(n, 1.0);
  AssemblyContext ctx;
  ctx.gmin = 1e-12;

  ws.assemble(x, ctx);
  ASSERT_TRUE(ws.factor_and_solve(rhs));
  EXPECT_EQ(ws.stats().full_factorizations, 1u);
  EXPECT_EQ(ws.stats().lu_reuses, 0u);

  // Same iterate, same coefficients: bit-identical values, reuse.
  ws.assemble(x, ctx);
  rhs.assign(n, 1.0);
  ASSERT_TRUE(ws.factor_and_solve(rhs));
  EXPECT_EQ(ws.stats().lu_reuses, 1u);
  EXPECT_EQ(ws.stats().full_factorizations + ws.stats().refactorizations, 1u);

  // gmin stage change: no reuse, the ladder re-factors the new values.
  ctx.gmin = 1e-3;
  ws.assemble(x, ctx);
  rhs.assign(n, 1.0);
  ASSERT_TRUE(ws.factor_and_solve(rhs));
  EXPECT_EQ(ws.stats().lu_reuses, 1u);
  EXPECT_EQ(ws.stats().full_factorizations + ws.stats().refactorizations, 2u);

  // source_scale change at fixed gmin: residual-only, reuse is correct.
  ctx.source_scale = 0.5;
  ws.assemble(x, ctx);
  rhs.assign(n, 1.0);
  ASSERT_TRUE(ws.factor_and_solve(rhs));
  EXPECT_EQ(ws.stats().lu_reuses, 2u);
  EXPECT_EQ(ws.stats().full_factorizations + ws.stats().refactorizations, 2u);
}

TEST(SolverWorkspace, SingularSystemWalksTheFullFallbackLadder) {
  // A current source between two otherwise-floating nodes contributes no
  // Jacobian entries at all: the sparse factorization fails, the dense
  // fallback factors the same (all-zero) matrix and fails too, and
  // factor_and_solve reports false instead of crashing or dividing by zero.
  Circuit ckt;
  const NodeId a = ckt.node("a"), b = ckt.node("b");
  ckt.add_isource("I1", a, b, SourceSpec::DC(1e-6));
  NewtonOptions o;
  o.backend = SolverBackend::kSparse;
  o.presolve_lint = false;
  SolverWorkspace ws(ckt, o);
  AssemblyContext ctx;
  linalg::Vector x(ckt.system_size(), 0.0);
  ws.assemble(x, ctx);
  linalg::Vector rhs(ckt.system_size(), 1.0);
  EXPECT_FALSE(ws.factor_and_solve(rhs));
  EXPECT_GE(ws.stats().dense_fallbacks, 1u);
}

}  // namespace
}  // namespace mivtx::spice
