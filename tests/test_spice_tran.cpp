// Transient analysis: integrator accuracy against analytic RC solutions,
// breakpoint handling, stiff-parasitic robustness (BDF2 regression), and
// cell-level delay sanity.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "bsimsoi/params.h"
#include "common/error.h"
#include "spice/parser.h"
#include "spice/transient.h"
#include "waveform/measure.h"

namespace mivtx::spice {
namespace {

// RC low-pass driven by a voltage step via PWL.
Circuit rc_step(double r, double c, double t_step) {
  Circuit ckt;
  const NodeId in = ckt.node("in"), out = ckt.node("out");
  ckt.add_vsource("VIN", in, kGround,
                  SourceSpec::Pwl({{t_step, 0.0}, {t_step * 1.0000001, 1.0}}));
  ckt.add_resistor("R1", in, out, r);
  ckt.add_capacitor("C1", out, kGround, c);
  return ckt;
}

TEST(Transient, RcStepMatchesAnalytic) {
  const double r = 1e3, c = 1e-12, tau = r * c;  // 1 ns
  const Circuit ckt = rc_step(r, c, 1e-10);
  TransientOptions opts;
  opts.t_stop = 5e-9;
  opts.reltol = 1e-5;
  const TransientResult tr = transient(ckt, opts);
  ASSERT_TRUE(tr.ok) << tr.error;
  const auto& out = tr.v("out");
  for (double t : {0.5e-9, 1e-9, 2e-9, 4e-9}) {
    const double exact = 1.0 - std::exp(-(t - 1e-10) / tau);
    EXPECT_NEAR(out.sample(t), exact, 2e-3) << t;
  }
  // Before the step: flat zero.
  EXPECT_NEAR(out.sample(0.5e-10), 0.0, 1e-9);
}

TEST(Transient, PostBreakpointStepIsErrorControlled) {
  // Regression: the step after a source-corner breakpoint restarts the
  // integrator (first_step), which used to skip the LTE check entirely and
  // then grow h by the full 2.0x with no error estimate.  With h_max large
  // relative to tau, the post-corner restart step (h_max/100) is already
  // ~tau here, so a blind accept parks a sample far off the exponential.
  // The fix estimates the startup step's error by BE step doubling.
  const double r = 1e3, c = 1e-14, tau = r * c;  // 10 ps
  const double t0 = 1e-10, t1 = 1.2e-10;         // 20 ps input ramp
  Circuit ckt;
  const NodeId in = ckt.node("in"), out = ckt.node("out");
  ckt.add_vsource("VIN", in, kGround,
                  SourceSpec::Pwl({{t0, 0.0}, {t1, 1.0}}));
  ckt.add_resistor("R1", in, out, r);
  ckt.add_capacitor("C1", out, kGround, c);
  TransientOptions opts;
  opts.t_stop = 5e-10;
  opts.h_max = 1e-9;  // post-corner restart h = h_max/100 = 10 ps = tau
  const TransientResult tr = transient(ckt, opts);
  ASSERT_TRUE(tr.ok) << tr.error;
  const auto& v = tr.v("out");
  // Exact response to the ramp: for t in [t0, t1],
  //   v = (t - t0)/(t1 - t0) - tau/(t1 - t0) * (1 - exp(-(t - t0)/tau)),
  // then relaxes to 1 with time constant tau.
  const double k = 1.0 / (t1 - t0);
  const auto exact = [&](double t) {
    if (t <= t0) return 0.0;
    const double tr_end = std::min(t, t1);
    double vr = k * (tr_end - t0) - k * tau * (1.0 - std::exp(-(tr_end - t0) / tau));
    if (t > t1) vr = 1.0 + (vr - 1.0) * std::exp(-(t - t1) / tau);
    return vr;
  };
  double max_err = 0.0;
  for (std::size_t i = 0; i < v.size(); ++i)
    max_err = std::max(max_err, std::fabs(v.value(i) - exact(v.time(i))));
  // Pre-fix the blind post-corner steps put max_err at ~0.077; with the
  // startup LTE check it lands around 2e-5.
  EXPECT_LT(max_err, 0.02);
}

TEST(Transient, RcSinSteadyStateAmplitude) {
  // 1 kOhm / 1 pF driven at f = 1/(2 pi tau): gain 1/sqrt(2).
  const double r = 1e3, c = 1e-12;
  const double f = 1.0 / (2.0 * M_PI * r * c);
  Circuit ckt;
  const NodeId in = ckt.node("in"), out = ckt.node("out");
  ckt.add_vsource("VIN", in, kGround, SourceSpec::Sin(0.0, 1.0, f));
  ckt.add_resistor("R1", in, out, r);
  ckt.add_capacitor("C1", out, kGround, c);
  TransientOptions opts;
  opts.t_stop = 12.0 / f;  // several periods
  opts.reltol = 1e-5;
  const TransientResult tr = transient(ckt, opts);
  ASSERT_TRUE(tr.ok) << tr.error;
  // Measure amplitude over the last two periods.
  const auto win = tr.v("out").window(10.0 / f, 12.0 / f);
  const double amp = 0.5 * (win.max_value() - win.min_value());
  EXPECT_NEAR(amp, 1.0 / std::sqrt(2.0), 0.02);
}

TEST(Transient, ChargeConservationCapacitiveDivider) {
  // Step into two series caps: final voltages split by 1/C ratio.
  Circuit ckt;
  const NodeId in = ckt.node("in"), mid = ckt.node("mid");
  ckt.add_vsource("VIN", in, kGround,
                  SourceSpec::Pwl({{1e-10, 0.0}, {2e-10, 1.0}}));
  ckt.add_capacitor("C1", in, mid, 1e-15);
  ckt.add_capacitor("C2", mid, kGround, 3e-15);
  TransientOptions opts;
  opts.t_stop = 1e-9;
  // 'mid' is a capacitor-only node; the pre-solve lint gate rejects it by
  // default (its DC value is leak-dependent).  This test deliberately opts
  // out to exercise charge conservation through the integrator.
  opts.newton.presolve_lint = false;
  const TransientResult tr = transient(ckt, opts);
  ASSERT_TRUE(tr.ok) << tr.error;
  // V(mid) = C1/(C1+C2) * 1 V = 0.25 V.
  EXPECT_NEAR(tr.v("mid").sample(1e-9), 0.25, 5e-3);
}

TEST(Transient, BreakpointsAreHitExactly) {
  const Circuit ckt = rc_step(1e3, 1e-12, 3.33e-10);
  TransientOptions opts;
  opts.t_stop = 1e-9;
  const TransientResult tr = transient(ckt, opts);
  ASSERT_TRUE(tr.ok);
  // A sample must exist exactly at the PWL corner.
  const auto& times = tr.v("out").times();
  const bool found = std::any_of(times.begin(), times.end(), [](double t) {
    return std::fabs(t - 3.33e-10) < 1e-18;
  });
  EXPECT_TRUE(found);
}

TEST(Transient, StiffParasiticNetworkDoesNotUnderflow) {
  // Regression for the trapezoidal-ringing failure: femtosecond RC time
  // constants (ohm-scale parasitics against fF caps) beside nanosecond
  // edges must integrate cleanly with BDF2.
  Circuit ckt;
  const NodeId in = ckt.node("in"), a = ckt.node("a"), b = ckt.node("b");
  PulseSpec p;
  p.v1 = 0;
  p.v2 = 1;
  p.delay = 2e-10;
  p.rise = 2e-11;
  p.fall = 2e-11;
  p.width = 4e-10;
  ckt.add_vsource("VIN", in, kGround, SourceSpec::Pulse(p));
  ckt.add_resistor("R1", in, a, 3.0);   // tau = 3 fs against 1 fF
  ckt.add_capacitor("Ca", a, kGround, 1e-15);
  ckt.add_resistor("R2", a, b, 7.0);
  ckt.add_capacitor("Cb", b, kGround, 1e-15);
  TransientOptions opts;
  opts.t_stop = 1e-9;
  opts.h_max = 1e-11;
  const TransientResult tr = transient(ckt, opts);
  ASSERT_TRUE(tr.ok) << tr.error;
  // b follows the pulse (fs delays are invisible at this scale).
  EXPECT_NEAR(tr.v("b").sample(0.5e-9), 1.0, 1e-2);
  EXPECT_NEAR(tr.v("b").sample(0.1e-9), 0.0, 1e-2);
}

TEST(Transient, InverterDelayAndSwing) {
  const std::string net = R"(inv
.model nch nmos LEVEL=70 VTH0=0.35 L=24n W=192n U0=0.03
.model pch pmos LEVEL=70 VTH0=-0.35 L=24n W=192n U0=0.012
VDD vdd 0 DC 1.0
VIN in 0 PULSE(0 1 200p 20p 20p 400p)
M1 out in 0 nch
M2 out in vdd pch
C1 out 0 1f
.end
)";
  const ParsedNetlist p = parse_netlist(net);
  TransientOptions opts;
  opts.t_stop = 1.2e-9;
  const TransientResult tr = transient(p.circuit, opts);
  ASSERT_TRUE(tr.ok) << tr.error;
  const auto d_hl = waveform::propagation_delay(
      tr.v("in"), tr.v("out"), 0.5, 0.5, 0.0, waveform::EdgeKind::kRise,
      waveform::EdgeKind::kFall);
  const auto d_lh = waveform::propagation_delay(
      tr.v("in"), tr.v("out"), 0.5, 0.5, 6e-10, waveform::EdgeKind::kFall,
      waveform::EdgeKind::kRise);
  ASSERT_TRUE(d_hl.has_value());
  ASSERT_TRUE(d_lh.has_value());
  EXPECT_GT(*d_hl, 1e-13);
  EXPECT_LT(*d_hl, 5e-11);
  // PMOS is weaker: rising output slower than falling output.
  EXPECT_GT(*d_lh, *d_hl);
  // Rails respected within overshoot margin.
  EXPECT_GT(tr.v("out").min_value(), -0.1);
  EXPECT_LT(tr.v("out").max_value(), 1.1);
  // Supply delivers net charge (current into circuit -> negative branch).
  EXPECT_LT(tr.i("VDD").average(0.0, 1.2e-9), 0.0);
}

TEST(Transient, ResultAccessorsThrowOnUnknownNames) {
  const Circuit ckt = rc_step(1e3, 1e-12, 1e-10);
  TransientOptions opts;
  opts.t_stop = 1e-9;
  const TransientResult tr = transient(ckt, opts);
  ASSERT_TRUE(tr.ok);
  EXPECT_THROW(tr.v("nonexistent"), Error);
  EXPECT_THROW(tr.i("nonexistent"), Error);
  EXPECT_NO_THROW(tr.i("VIN"));
}

TEST(Transient, StepBudgetGuards) {
  const Circuit ckt = rc_step(1e3, 1e-12, 1e-10);
  TransientOptions opts;
  opts.t_stop = 1e-9;
  opts.max_steps = 3;  // absurdly small
  const TransientResult tr = transient(ckt, opts);
  EXPECT_FALSE(tr.ok);
  EXPECT_NE(tr.error.find("budget"), std::string::npos);
}

}  // namespace
}  // namespace mivtx::spice
