// TCAD substrate: mesh geometry, device structure, and device-level physics
// of the drift-diffusion solver.
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"
#include "linalg/vector_ops.h"
#include "tcad/characterize.h"
#include "tcad/device.h"
#include "tcad/edge_table.h"
#include "tcad/mesh.h"
#include "tcad/solver.h"

namespace mivtx::tcad {
namespace {

// A coarse spec keeps the physics tests fast (~100 ms per solve).
DeviceSpec coarse(Variant v = Variant::kTraditional,
                  Polarity p = Polarity::kNmos) {
  DeviceSpec spec = DeviceSpec::for_variant(v, p);
  spec.cells_src = 4;
  spec.cells_spacer = 2;
  spec.cells_gate = 6;
  spec.cells_si_y = 6;
  spec.cells_ox_y = 2;
  return spec;
}

TEST(Mesh, SubdivideProducesExactSegments) {
  const auto lines = Mesh::subdivide(0.0, {{10e-9, 2}, {20e-9, 4}});
  ASSERT_EQ(lines.size(), 7u);
  EXPECT_DOUBLE_EQ(lines[0], 0.0);
  EXPECT_DOUBLE_EQ(lines[2], 10e-9);
  EXPECT_DOUBLE_EQ(lines.back(), 30e-9);
  EXPECT_THROW(Mesh::subdivide(0.0, {{0.0, 1}}), mivtx::Error);
}

TEST(Mesh, NodeIndexingRoundTrip) {
  const Mesh m(Mesh::subdivide(0, {{4e-9, 4}}), Mesh::subdivide(0, {{3e-9, 3}}));
  EXPECT_EQ(m.nx(), 5u);
  EXPECT_EQ(m.ny(), 4u);
  for (std::size_t i = 0; i < m.nx(); ++i) {
    for (std::size_t j = 0; j < m.ny(); ++j) {
      const std::size_t n = m.node(i, j);
      EXPECT_EQ(m.node_i(n), i);
      EXPECT_EQ(m.node_j(n), j);
    }
  }
}

TEST(Mesh, ControlAreasPartitionDomain) {
  const Mesh m(Mesh::subdivide(0, {{10e-9, 5}}), Mesh::subdivide(0, {{6e-9, 3}}));
  double total = 0.0;
  for (std::size_t i = 0; i < m.nx(); ++i)
    for (std::size_t j = 0; j < m.ny(); ++j) total += m.control_area(i, j);
  EXPECT_NEAR(total, 10e-9 * 6e-9, 1e-25);
}

TEST(Mesh, SiliconAreaRespectsMaterials) {
  Mesh m(Mesh::subdivide(0, {{2e-9, 2}}), Mesh::subdivide(0, {{2e-9, 2}}));
  m.set_cell_material(0, 0, Material::kOxide);
  m.set_cell_material(1, 0, Material::kOxide);
  // Bottom row of cells is oxide; silicon area halves.
  double si = 0.0;
  for (std::size_t i = 0; i < m.nx(); ++i)
    for (std::size_t j = 0; j < m.ny(); ++j)
      si += m.silicon_control_area(i, j);
  EXPECT_NEAR(si, 0.5 * 2e-9 * 2e-9, 1e-27);
  EXPECT_TRUE(m.node_touches_silicon(0, 1));
  EXPECT_FALSE(m.node_all_silicon(0, 1));
  EXPECT_FALSE(m.node_touches_silicon(0, 0));
}

TEST(Device, StructureContactsAndDoping) {
  const DeviceStructure s = build_structure(coarse());
  const Mesh& m = s.mesh;
  int n_src = 0, n_drn = 0, n_gate = 0, n_miv = 0;
  for (std::size_t nd = 0; nd < m.num_nodes(); ++nd) {
    switch (s.contact[nd]) {
      case ContactKind::kSource: ++n_src; break;
      case ContactKind::kDrain: ++n_drn; break;
      case ContactKind::kGate: ++n_gate; break;
      case ContactKind::kMiv: ++n_miv; break;
      default: break;
    }
  }
  EXPECT_GT(n_src, 0);
  EXPECT_EQ(n_src, n_drn);
  EXPECT_GT(n_gate, 0);
  EXPECT_EQ(n_miv, 0);  // traditional: no MIV plate
  // Doping: n+ at both ends, p-ish in the channel.
  const std::size_t j_mid = (s.j_si_lo + s.j_si_hi) / 2;
  EXPECT_GT(s.doping[m.node(0, j_mid)], 1e24);
  EXPECT_LT(s.doping[m.node(m.nx() / 2, j_mid)], 0.0);
}

TEST(Device, MivVariantsGetBottomPlate) {
  for (Variant v : {Variant::kMiv1Channel, Variant::kMiv2Channel,
                    Variant::kMiv4Channel}) {
    const DeviceStructure s = build_structure(coarse(v));
    int n_miv = 0;
    for (const ContactKind c : s.contact) n_miv += c == ContactKind::kMiv;
    EXPECT_GT(n_miv, 0) << variant_name(v);
  }
}

TEST(Device, VariantMetadata) {
  EXPECT_EQ(variant_channels(Variant::kTraditional), 1);
  EXPECT_EQ(variant_channels(Variant::kMiv2Channel), 2);
  EXPECT_EQ(variant_channels(Variant::kMiv4Channel), 4);
  EXPECT_STREQ(variant_name(Variant::kMiv1Channel), "1-channel");
}

TEST(EdgeTable, PoissonCoefficientsPositive) {
  const DeviceStructure s = build_structure(coarse());
  const EdgeTable t = build_edge_table(s);
  EXPECT_GT(t.edges.size(), 0u);
  for (const Edge& e : t.edges) {
    EXPECT_GT(e.c_poisson, 0.0);
    EXPECT_GE(e.si_face, 0.0);
    EXPECT_GT(e.d, 0.0);
  }
  double si_total = 0.0;
  for (double v : t.si_volume) si_total += v;
  const DeviceSpec& spec = s.spec;
  const double expect_si =
      (2 * spec.l_src + 2 * spec.l_spacer + spec.l_gate) * spec.tsi;
  EXPECT_NEAR(si_total, expect_si, 1e-6 * expect_si);
}

TEST(Solver, EquilibriumChargeNeutralInContacts) {
  DeviceSimulator sim(coarse());
  const Solution& sol = sim.solve(BiasPoint{0.0, 0.0});
  EXPECT_TRUE(sol.converged);
  const Mesh& m = sim.structure().mesh;
  const std::size_t j_mid = (sim.structure().j_si_lo + sim.structure().j_si_hi) / 2;
  const std::size_t nd = m.node(0, j_mid);
  // At the n+ source contact: n ~ Nd, p ~ ni^2/Nd.
  EXPECT_NEAR(sol.n[nd] / 1e25, 1.0, 0.01);
  EXPECT_LT(sol.p[nd], 1e10);
  // Zero bias, zero current.
  EXPECT_LT(std::fabs(sim.drain_current(sol)), 1e-12);
}

TEST(Solver, TransistorTurnsOn) {
  DeviceSimulator sim(coarse());
  const double i_off = std::fabs(sim.drain_current(sim.solve({0.0, 1.0})));
  const double i_on = std::fabs(sim.drain_current(sim.solve({1.0, 1.0})));
  EXPECT_GT(i_on, 1e-6);
  EXPECT_LT(i_off, 1e-8);
  EXPECT_GT(i_on / i_off, 1e3);
}

TEST(Solver, OutputCurveSaturates) {
  DeviceSimulator sim(coarse());
  Characterizer ch(sim);
  const Curve c = ch.id_vd(1.0, {0.1, 0.4, 0.7, 1.0});
  // Monotone non-decreasing and strongly sublinear beyond saturation.
  for (std::size_t k = 1; k < c.size(); ++k) EXPECT_GE(c[k].y, c[k - 1].y);
  const double g_early = (c[1].y - c[0].y) / 0.3;
  const double g_late = (c[3].y - c[2].y) / 0.3;
  EXPECT_LT(g_late, 0.25 * g_early);
}

TEST(Solver, PmosMirrorsOperation) {
  DeviceSimulator sim(coarse(Variant::kTraditional, Polarity::kPmos));
  Characterizer ch(sim);
  const double ion = ch.ion(1.0);
  const double ioff = ch.ioff(1.0);
  EXPECT_GT(ion, 1e-6);
  EXPECT_GT(ion / std::max(ioff, 1e-30), 1e3);
}

TEST(Solver, GateChargeIncreasesWithVg) {
  DeviceSimulator sim(coarse());
  const double q0 = sim.gate_charge(sim.solve({0.2, 0.0}));
  const double q1 = sim.gate_charge(sim.solve({1.0, 0.0}));
  EXPECT_GT(q1, q0);
}

TEST(Solver, MivCouplingRaisesDrive) {
  DeviceSimulator trad(coarse(Variant::kTraditional));
  DeviceSimulator miv(coarse(Variant::kMiv1Channel));
  Characterizer ch_t(trad), ch_m(miv);
  EXPECT_GT(ch_m.ion(1.0), ch_t.ion(1.0));
}

TEST(Solver, MobilityFactorScalesCurrent) {
  DeviceSpec weak = coarse();
  weak.mobility_factor = 0.5;
  DeviceSimulator strong(coarse()), half(weak);
  Characterizer cs(strong), cw(half);
  const double ratio = cw.ion(1.0) / cs.ion(1.0);
  EXPECT_LT(ratio, 0.95);
  EXPECT_GT(ratio, 0.4);
}

TEST(Characterizer, VthInPlausibleBand) {
  DeviceSimulator sim(coarse());
  Characterizer ch(sim);
  const double vth = ch.vth_cc(1.0);
  EXPECT_GT(vth, 0.15);
  EXPECT_LT(vth, 0.6);
}

TEST(Characterizer, CurvesShareGrid) {
  DeviceSimulator sim(coarse());
  Characterizer ch(sim);
  const auto xs = linalg::linspace(0.0, 1.0, 5);
  const Curve c = ch.id_vg(1.0, xs);
  ASSERT_EQ(c.size(), xs.size());
  for (std::size_t k = 0; k < xs.size(); ++k) EXPECT_DOUBLE_EQ(c[k].x, xs[k]);
}

TEST(Characterizer, CggPositiveAndRises) {
  DeviceSimulator sim(coarse());
  Characterizer ch(sim);
  const Curve cv = ch.cgg_vg(0.0, {0.1, 0.9});
  EXPECT_GT(cv[0].y, 0.0);
  EXPECT_GT(cv[1].y, cv[0].y);
}

TEST(Device, BadSpecsRejected) {
  DeviceSpec s = coarse();
  s.miv_coverage = 1.5;
  EXPECT_THROW(build_structure(s), mivtx::Error);
  s = coarse();
  s.tsi = 0.0;
  EXPECT_THROW(build_structure(s), mivtx::Error);
}

}  // namespace
}  // namespace mivtx::tcad
