// mivtx::trace — span nesting (including across stolen pool tasks), ring
// overflow semantics, Chrome trace-event export, and the disabled path.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "runtime/thread_pool.h"
#include "trace/trace.h"

namespace mivtx::trace {
namespace {

#if defined(MIVTX_TRACE_ENABLED)

// RAII: stop-and-drop the global tracer so one test cannot leak an enabled
// session into the rest of the suite.
struct TracerSession {
  explicit TracerSession(std::size_t ring_capacity = Tracer::kDefaultRingCapacity) {
    Tracer::global().start(ring_capacity);
  }
  ~TracerSession() { Tracer::global().reset(); }
};

const TraceEvent* find_event(const std::vector<TraceEvent>& events,
                             const char* name) {
  for (const TraceEvent& e : events) {
    if (std::string(e.name) == name) return &e;
  }
  return nullptr;
}

TEST(Trace, DisabledRecordsNothingAndRegistersNoBuffers) {
  Tracer& tracer = Tracer::global();
  tracer.reset();
  ASSERT_FALSE(tracer.enabled());
  {
    Span outer("outer");
    Span inner("inner", "cat", "detail");
    inner.annotate("k", 1.0);
    EXPECT_FALSE(outer.active());
    EXPECT_FALSE(inner.active());
    EXPECT_EQ(outer.id(), 0u);
    EXPECT_EQ(current_span_id(), 0u);
  }
  // A disabled Span must never touch the tracer: no ring buffer gets
  // allocated or registered, and nothing is recorded.
  EXPECT_EQ(tracer.buffers_registered(), 0u);
  EXPECT_EQ(tracer.event_count(), 0u);
  EXPECT_TRUE(tracer.snapshot().empty());
}

TEST(Trace, SpanNestingSameThread) {
  TracerSession session;
  std::uint64_t outer_id = 0, inner_id = 0;
  {
    Span outer("outer");
    outer_id = outer.id();
    EXPECT_EQ(current_span_id(), outer_id);
    {
      Span inner("inner");
      inner_id = inner.id();
      EXPECT_EQ(current_span_id(), inner_id);
    }
    EXPECT_EQ(current_span_id(), outer_id);
  }
  EXPECT_EQ(current_span_id(), 0u);

  const auto events = Tracer::global().snapshot();
  ASSERT_EQ(events.size(), 2u);
  const TraceEvent* outer = find_event(events, "outer");
  const TraceEvent* inner = find_event(events, "inner");
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(outer->parent, 0u);
  EXPECT_EQ(inner->parent, outer->id);
  EXPECT_GE(inner->start_ns, outer->start_ns);
  EXPECT_GE(outer->dur_ns, inner->dur_ns);
}

TEST(Trace, NestsAcrossStolenTasks) {
  TracerSession session;
  runtime::ThreadPool pool(4);
  std::uint64_t root_id = 0;
  {
    Span root("root");
    root_id = root.id();
    runtime::TaskGroup group(&pool);
    for (int i = 0; i < 32; ++i) {
      group.run([] { Span task("task"); });
    }
    group.wait();
  }
  const auto events = Tracer::global().snapshot();
  std::size_t tasks = 0;
  std::set<std::uint32_t> tids;
  for (const TraceEvent& e : events) {
    if (std::string(e.name) != "task") continue;
    ++tasks;
    // The logical parent is the submitting thread's span no matter which
    // worker ran (or stole) the task.
    EXPECT_EQ(e.parent, root_id);
    tids.insert(e.tid);
  }
  EXPECT_EQ(tasks, 32u);
  // 32 tasks on a 4-worker pool: at least one task ran off the submitting
  // thread (wait() helps, so the submitter may run some itself).
  EXPECT_GE(tids.size(), 1u);
}

TEST(Trace, RingOverflowDropsOldestNeverBlocks) {
  TracerSession session(64);
  for (int i = 0; i < 200; ++i) {
    Span s("span");
    s.annotate("index", static_cast<double>(i));
  }
  Tracer& tracer = Tracer::global();
  EXPECT_EQ(tracer.event_count(), 64u);
  EXPECT_EQ(tracer.dropped_events(), 200u - 64u);
  // The survivors are exactly the newest 64 (136..199).
  const auto events = tracer.snapshot();
  ASSERT_EQ(events.size(), 64u);
  std::set<int> indexes;
  for (const TraceEvent& e : events) {
    ASSERT_EQ(e.num_args, 1u);
    indexes.insert(static_cast<int>(e.args[0].value));
  }
  EXPECT_EQ(*indexes.begin(), 136);
  EXPECT_EQ(*indexes.rbegin(), 199);
  EXPECT_EQ(indexes.size(), 64u);
}

TEST(Trace, ChromeJsonSchemaRoundTrip) {
  TracerSession session;
  set_thread_name("test-main");
  {
    Span s("escaped", "cat", "a\"b\\");
    s.annotate("newton_iters", 42.0);
  }
  const std::string json = Tracer::global().export_chrome_json();
  // Envelope.
  EXPECT_EQ(json.find("{\"displayTimeUnit\":\"ns\",\"traceEvents\":["), 0u);
  EXPECT_EQ(json.back(), '}');
  // Thread metadata (name registered with the buffer).
  EXPECT_NE(json.find("\"ph\":\"M\""), std::string::npos);
  EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(json.find("test-main"), std::string::npos);
  // The complete event with escaped detail and numeric annotation.
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"escaped\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"cat\""), std::string::npos);
  EXPECT_NE(json.find("\"detail\":\"a\\\"b\\\\\""), std::string::npos);
  EXPECT_NE(json.find("\"newton_iters\":42"), std::string::npos);
  EXPECT_NE(json.find("\"ts\":"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":"), std::string::npos);
  // No raw control characters or unescaped interior quotes can survive.
  for (char c : json) EXPECT_GE(static_cast<unsigned char>(c), 0x20);
}

TEST(Trace, SummaryAggregatesByPath) {
  TracerSession session;
  {
    Span alpha("alpha");
    for (int i = 0; i < 3; ++i) Span beta("beta");
  }
  const std::string summary = Tracer::global().render_summary();
  EXPECT_NE(summary.find("alpha;beta"), std::string::npos);
  EXPECT_NE(summary.find("3"), std::string::npos);
}

TEST(Trace, StopHaltsRecording) {
  TracerSession session;
  { Span s("before"); }
  Tracer& tracer = Tracer::global();
  EXPECT_EQ(tracer.event_count(), 1u);
  tracer.stop();
  { Span s("after"); }
  EXPECT_EQ(tracer.event_count(), 1u);
  EXPECT_EQ(find_event(tracer.snapshot(), "after"), nullptr);
}

TEST(Trace, DetailTruncatesSafely) {
  TracerSession session;
  const std::string longdetail(200, 'x');
  { Span s("long", "cat", longdetail.c_str()); }
  const auto events = Tracer::global().snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(std::string(events[0].detail).size(), kMaxDetail);
}

#else  // !MIVTX_TRACE_ENABLED

TEST(Trace, StubsCompileToNothing) {
  // The disabled build keeps the full API surface as inline no-ops.
  Tracer& tracer = Tracer::global();
  tracer.start();
  {
    Span s("anything", "cat", "detail");
    s.annotate("k", 1.0);
    EXPECT_FALSE(s.active());
    TaskScope scope(current_span_id());
  }
  EXPECT_FALSE(tracer.enabled());
  EXPECT_EQ(tracer.event_count(), 0u);
  EXPECT_EQ(tracer.export_chrome_json(),
            "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[]}");
}

#endif  // MIVTX_TRACE_ENABLED

}  // namespace
}  // namespace mivtx::trace
