// mivtx::verify: JSON round-trips, divergence measurement and first-failure
// localization, the differential solver matrix, the property engine, and
// golden-baseline rendering/drift detection (including the "a perturbed
// baseline must fail" guarantee the CI golden job depends on).
//
// SlowVerify* suites run the full 14x4 cell matrix and the PPA scheduling
// axes; ctest labels them "slow" so `ctest -L tier1` stays quick.
#include <gtest/gtest.h>

#include <cmath>
#include <fstream>
#include <string>
#include <vector>

#include "common/error.h"
#include "core/reference_cards.h"
#include "temp_dir.h"
#include "verify/compare.h"
#include "verify/differential.h"
#include "verify/golden.h"
#include "verify/json.h"
#include "verify/properties.h"
#include "waveform/waveform.h"

namespace mivtx {
namespace {

// ------------------------------------------------------------------ json

TEST(VerifyJson, ParsesAndRoundTripsTheGrammar) {
  const std::string text =
      R"({"a": 1.5, "b": [true, false, null, "x\n\"y\""], "c": {"n": -2e-3}})";
  const verify::Json doc = verify::Json::parse(text);
  ASSERT_TRUE(doc.is_object());
  EXPECT_DOUBLE_EQ(doc.find("a")->as_number(), 1.5);
  const verify::Json& arr = *doc.find("b");
  ASSERT_EQ(arr.items().size(), 4u);
  EXPECT_TRUE(arr.items()[0].as_bool());
  EXPECT_TRUE(arr.items()[2].is_null());
  EXPECT_EQ(arr.items()[3].as_string(), "x\n\"y\"");
  EXPECT_DOUBLE_EQ(doc.find("c")->find("n")->as_number(), -2e-3);
  // Round-trip: parse(dump(x)) == x structurally, and dump is stable.
  const std::string once = doc.dump(2);
  EXPECT_EQ(verify::Json::parse(once).dump(2), once);
}

TEST(VerifyJson, PreservesInsertionOrderAndNumberFidelity) {
  verify::Json obj = verify::Json::object();
  obj.set("zeta", verify::Json::number(0.1 + 0.2));  // not representable
  obj.set("alpha", verify::Json::number(1e-300));
  const std::string text = obj.dump();
  // "zeta" first: objects are ordered by insertion, not key.
  EXPECT_LT(text.find("zeta"), text.find("alpha"));
  const verify::Json back = verify::Json::parse(text);
  EXPECT_EQ(back.find("zeta")->as_number(), 0.1 + 0.2);  // bit-exact
  EXPECT_EQ(back.find("alpha")->as_number(), 1e-300);
}

TEST(VerifyJson, RejectsMalformedInputWithOffset) {
  EXPECT_THROW(verify::Json::parse("{\"a\": }"), Error);
  EXPECT_THROW(verify::Json::parse("[1, 2"), Error);
  EXPECT_THROW(verify::Json::parse("nul"), Error);
  EXPECT_THROW(verify::Json::parse("{} trailing"), Error);
}

// --------------------------------------------------------------- compare

waveform::Waveform ramp_wave(double slope, double until = 1.0, double dt = 0.1) {
  waveform::Waveform w;
  for (double t = 0.0; t <= until + 1e-12; t += dt) w.append(t, slope * t);
  return w;
}

TEST(VerifyCompare, LocalizesFirstDivergence) {
  // b drifts linearly away from a; with tol 0.25 the first union-grid point
  // over tolerance is t = 0.3 (divergence 0.1 * t / 0.1 ... exact: 0.1*t).
  const waveform::Waveform a = ramp_wave(1.0);
  const waveform::Waveform b = ramp_wave(2.0);
  const verify::SignalDivergence d =
      verify::compare_waveforms("V(x)", a, b, 0.25);
  EXPECT_NEAR(d.max_abs, 1.0, 1e-12);   // at t = 1.0
  EXPECT_NEAR(d.t_worst, 1.0, 1e-12);
  EXPECT_NEAR(d.t_first, 0.3, 1e-12);   // |a-b| = 0.3 > 0.25 first here
  EXPECT_GT(d.rms, 0.0);
  EXPECT_LT(d.rms, d.max_abs);
}

TEST(VerifyCompare, UnionGridCatchesBetweenSampleDivergence) {
  // a has a spike at t=0.5 that b's grid never sampled; comparing only on
  // b's grid would miss it entirely.
  waveform::Waveform a;
  a.append(0.0, 0.0);
  a.append(0.5, 1.0);
  a.append(1.0, 0.0);
  waveform::Waveform b;
  b.append(0.0, 0.0);
  b.append(1.0, 0.0);
  const verify::SignalDivergence d = verify::compare_waveforms("x", a, b, 0.1);
  EXPECT_NEAR(d.max_abs, 1.0, 1e-12);
  EXPECT_NEAR(d.t_worst, 0.5, 1e-12);
}

TEST(VerifyCompare, MissingSignalFailsTheSet) {
  std::map<std::string, waveform::Waveform> a, b;
  a["n1"] = ramp_wave(1.0);
  b["n1"] = ramp_wave(1.0);
  a["only_in_a"] = ramp_wave(0.5);
  const verify::WaveformSetComparison c =
      verify::compare_waveform_sets(a, b, 1e-9);
  EXPECT_FALSE(c.pass);
  ASSERT_EQ(c.missing.size(), 1u);
  EXPECT_EQ(c.missing[0], "only_in_a (only in A)");
}

TEST(VerifyCompare, SolutionComparisonNamesWorstUnknown) {
  spice::Circuit ckt;
  const spice::NodeId a = ckt.node("a"), b = ckt.node("b");
  ckt.add_resistor("R1", a, b, 1e3);
  ckt.add_resistor("R2", b, spice::kGround, 1e3);
  ckt.add_vsource("V1", a, spice::kGround, spice::SourceSpec::DC(1.0));
  const std::size_t n = ckt.system_size();
  linalg::Vector x(n), y(n);
  for (std::size_t i = 0; i < n; ++i) x[i] = y[i] = 0.25;
  const std::size_t victim = ckt.node_unknown(b);
  y[victim] += 1e-3;
  const verify::SolutionComparison c =
      verify::compare_solutions(ckt, x, y, 1e-9);
  EXPECT_FALSE(c.pass);
  EXPECT_NEAR(c.max_abs, 1e-3, 1e-15);
  EXPECT_EQ(c.worst_index, victim);
  EXPECT_EQ(c.worst_unknown, ckt.unknown_name(victim));
}

// ---------------------------------------------------------- differential

TEST(VerifyDifferential, NetlistCaseHonorsTranDirective) {
  const verify::DiffCase c = verify::netlist_case(
      "rc", "t\nV1 in 0 DC 1\nR1 in out 1k\nC1 out 0 1p\n.tran 1p 7n\n.end\n");
  EXPECT_NEAR(c.t_stop, 7e-9, 1e-21);
}

TEST(VerifyDifferential, ExampleNetlistAgreesAcrossBackends) {
  const verify::DiffCase c = verify::netlist_case(
      "divider",
      "t\nV1 in 0 PULSE(0 1 1n 1n 1n 5n)\nR1 in mid 1k\nR2 mid 0 2k\n"
      "C1 mid 0 1p\n.tran 0.1n 10n\n.end\n");
  const verify::DiffReport report = verify::run_differential({c});
  EXPECT_TRUE(report.pass) << (report.reports.empty()
                                   ? std::string("no reports")
                                   : report.reports.front().summary());
  EXPECT_EQ(report.cases, 1u);
  // dense-vs-{sparse, fullfactor, bypass, simd, simd-bypass, bicgstab}.
  EXPECT_EQ(report.comparisons, 6u);
}

TEST(VerifyDifferential, DetectsAnInjectedDivergence) {
  // Same topology, one component value nudged: the matrix must flag it and
  // name where it first diverged.  (Uses two single-config matrices so the
  // "reference" and "candidate" genuinely differ.)
  verify::DiffCase honest = verify::netlist_case(
      "rc", "t\nV1 in 0 PULSE(0 1 1n 1n 1n 5n)\nR1 in out 1k\n"
            "C1 out 0 1p\n.tran 0.1n 10n\n.end\n");
  verify::DiffCase nudged = verify::netlist_case(
      "rc", "t\nV1 in 0 PULSE(0 1 1n 1n 1n 5n)\nR1 in out 1.1k\n"
            "C1 out 0 1p\n.tran 0.1n 10n\n.end\n");
  // Run both through one backend and compare the transients directly.
  const auto run = [](const verify::DiffCase& c) {
    spice::TransientOptions topt;
    topt.t_stop = c.t_stop;
    return spice::transient(c.circuit, topt);
  };
  const verify::WaveformSetComparison cmp =
      verify::compare_transients(run(honest), run(nudged), 1e-6);
  EXPECT_FALSE(cmp.pass);
  EXPECT_FALSE(cmp.first_signal.empty());
  EXPECT_GT(cmp.t_first, 0.0);
}

TEST(SlowVerifyDifferential, FullCellMatrixWithinTolerance) {
  // The acceptance bar: all 14 cells x 4 implementations, dense vs sparse
  // vs fullfactor vs the batched SIMD kernel at 1e-9 (the bypass configs
  // at their own production bound).
  const verify::DiffReport report = verify::run_differential(
      verify::cell_corpus(core::reference_model_library()));
  EXPECT_TRUE(report.pass);
  EXPECT_EQ(report.cases, 56u);
  EXPECT_EQ(report.failures, 0u);
  for (const verify::CaseConfigReport& r : report.reports) {
    EXPECT_TRUE(r.ok) << r.summary();
    if (r.tolerance <= 1e-9) {
      EXPECT_LE(r.dcop.max_abs, 1e-9) << r.summary();
      EXPECT_LE(r.transient.max_abs, 1e-9) << r.summary();
    }
  }
}

TEST(SlowVerifyDifferential, PpaBitIdenticalAcrossSchedulingAxes) {
  verify::PpaDiffOptions opts;
  opts.jobs = 3;
  opts.max_cells = 8;  // full 56 runs in the verify CLI / CI job
  const verify::PpaDiffReport report =
      verify::run_ppa_differential(core::reference_model_library(), opts);
  EXPECT_TRUE(report.pass);
  for (const verify::PpaEquivalence& row : report.rows)
    EXPECT_TRUE(row.ok) << row.cell << ": " << row.detail;
}

// ------------------------------------------------------------ properties

TEST(VerifyProperties, AllPropertiesHoldAtTwoSeeds) {
  for (const std::uint64_t seed : {20230913ull, 424242ull}) {
    verify::PropertyOptions opts;
    opts.seed = seed;
    opts.cases = 6;
    const std::vector<verify::PropertyResult> results =
        verify::run_properties(opts);
    EXPECT_EQ(results.size(), 11u);
    for (const verify::PropertyResult& r : results)
      EXPECT_TRUE(r.pass) << r.name << " (seed " << seed << "): " << r.detail
                          << " worst " << r.worst << " bound " << r.bound;
  }
}

TEST(VerifyProperties, ResultsAreDeterministicPerSeed) {
  verify::PropertyOptions opts;
  opts.cases = 4;
  const auto a = verify::run_properties(opts);
  const auto b = verify::run_properties(opts);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].name, b[i].name);
    EXPECT_EQ(a[i].worst, b[i].worst);  // bit-identical replay
  }
}

// ---------------------------------------------------------------- golden

TEST(VerifyGolden, RenderIsByteStableAndSelfCheckPasses) {
  verify::GoldenContext ctx;
  const verify::GoldenSuiteResult t2 = verify::compute_golden_suite("table2", ctx);
  EXPECT_FALSE(t2.metrics.empty());
  const std::string a = verify::render_baseline(t2, "abc123", 1);
  const std::string b = verify::render_baseline(t2, "abc123", 1);
  EXPECT_EQ(a, b);
  const verify::GoldenCheck check = verify::check_against_baseline(t2, a);
  EXPECT_TRUE(check.pass) << check.summary();
  EXPECT_EQ(check.drifted, 0u);
}

TEST(VerifyGolden, PerturbedBaselineFails) {
  // The CI golden job's guarantee in miniature: take a real baseline,
  // perturb one value beyond its rtol, and the check must fail and name
  // the metric.
  verify::GoldenContext ctx;
  const verify::GoldenSuiteResult t1 = verify::compute_golden_suite("table1", ctx);
  verify::Json doc =
      verify::Json::parse(verify::render_baseline(t1, "deadbeef", 1));
  verify::Json* metrics = const_cast<verify::Json*>(doc.find("metrics"));
  ASSERT_NE(metrics, nullptr);
  ASSERT_FALSE(metrics->members().empty());
  const std::string victim = metrics->members().front().first;
  verify::Json entry = verify::Json::object();
  entry.set("value",
            verify::Json::number(
                metrics->members().front().second.find("value")->as_number() *
                    1.02 +
                1e-12));
  entry.set("rtol", verify::Json::number(1e-6));
  metrics->set(victim, std::move(entry));

  const verify::GoldenCheck check =
      verify::check_against_baseline(t1, doc.dump(2));
  EXPECT_FALSE(check.pass);
  EXPECT_EQ(check.drifted, 1u);
  bool found = false;
  for (const verify::MetricCheck& mc : check.checks)
    if (mc.name == victim) {
      found = true;
      EXPECT_EQ(mc.status, verify::MetricStatus::kDrifted);
    }
  EXPECT_TRUE(found);
}

TEST(VerifyGolden, SchemaDriftIsDrift) {
  verify::GoldenContext ctx;
  verify::GoldenSuiteResult t2 = verify::compute_golden_suite("table2", ctx);
  const std::string baseline = verify::render_baseline(t2, "x", 1);
  // The run now produces an extra metric the baseline never recorded.
  t2.metrics.push_back({"card.brand_new", 1.0, 1e-6});
  verify::GoldenCheck check = verify::check_against_baseline(t2, baseline);
  EXPECT_FALSE(check.pass);
  // And a metric vanishing from the run is equally a failure.
  t2.metrics.clear();
  t2.metrics.push_back({"card.level", 70.0, 1e-6});
  check = verify::check_against_baseline(t2, baseline);
  EXPECT_FALSE(check.pass);
}

TEST(VerifyGolden, BlockPpaBaselineMatchesAndPerturbedCopyFails) {
  // The block-level PPA gate end to end: the measured suite must match the
  // checked-in baseline, and a copy with one delay nudged past its rtol
  // must fail naming exactly that metric — the must-fail self-test the CI
  // blockppa job relies on.
  verify::GoldenContext ctx;
  const verify::GoldenSuiteResult measured =
      verify::compute_golden_suite("blockppa", ctx);
  ASSERT_FALSE(measured.metrics.empty());

  const std::string path = std::string(MIVTX_GOLDEN_DIR) + "/blockppa.json";
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good()) << path << " missing — run mivtx_verify --golden "
                            "--refresh-goldens --suites blockppa";
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string baseline = ss.str();
  const verify::GoldenCheck check =
      verify::check_against_baseline(measured, baseline);
  EXPECT_TRUE(check.pass) << check.summary();

  verify::Json doc = verify::Json::parse(baseline);
  verify::Json* metrics = const_cast<verify::Json*>(doc.find("metrics"));
  ASSERT_NE(metrics, nullptr);
  const std::string victim = "rca16.2d.delay_s";
  const verify::Json* old = metrics->find(victim);
  ASSERT_NE(old, nullptr);
  verify::Json entry = verify::Json::object();
  entry.set("value",
            verify::Json::number(old->find("value")->as_number() * 1.10));
  entry.set("rtol", verify::Json::number(old->find("rtol")->as_number()));
  metrics->set(victim, std::move(entry));

  const verify::GoldenCheck perturbed =
      verify::check_against_baseline(measured, doc.dump(2));
  EXPECT_FALSE(perturbed.pass);
  EXPECT_EQ(perturbed.drifted, 1u);
  bool found = false;
  for (const verify::MetricCheck& mc : perturbed.checks)
    if (mc.name == victim) {
      found = true;
      EXPECT_EQ(mc.status, verify::MetricStatus::kDrifted);
    }
  EXPECT_TRUE(found);
}

TEST(VerifyGolden, CheckedInBaselinesMatchCheapSuites) {
  // Guards the actual files in tests/golden/ for the suites cheap enough
  // for tier1; table3/fig4/fig5 run in the CI golden job via the CLI.
  verify::GoldenContext ctx;
  for (const std::string suite : {"table1", "table2"}) {
    const std::string path =
        std::string(MIVTX_GOLDEN_DIR) + "/" + suite + ".json";
    std::ifstream in(path, std::ios::binary);
    ASSERT_TRUE(in.good()) << path << " missing — run mivtx_verify --golden "
                              "--refresh-goldens";
    std::stringstream ss;
    ss << in.rdbuf();
    const verify::GoldenCheck check = verify::check_against_baseline(
        verify::compute_golden_suite(suite, ctx), ss.str());
    EXPECT_TRUE(check.pass) << check.summary();
  }
}

}  // namespace
}  // namespace mivtx
