// Netlist fuzzing: every deck in tests/fuzz/ — and deterministic mutants
// derived from each — must be either diagnosed (parse error, lint error,
// clean non-convergence) or solved.  Crashes, hangs and non-mivtx
// exceptions are the failures; the same binary runs under ASan/UBSan in CI
// so memory errors in the parser/lint/solver path surface here too.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "cells/circuitgen.h"
#include "common/log.h"
#include "core/ppa.h"
#include "core/reference_cards.h"
#include "verify/fuzz.h"

namespace mivtx {
namespace {

namespace fs = std::filesystem;

std::vector<fs::path> corpus_files() {
  std::vector<fs::path> files;
  for (const auto& entry : fs::directory_iterator(MIVTX_FUZZ_CORPUS_DIR))
    if (entry.path().extension() == ".sp") files.push_back(entry.path());
  std::sort(files.begin(), files.end());
  return files;
}

std::string slurp(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

class QuietLog : public ::testing::Test {
 protected:
  void SetUp() override {
    prev_ = log_level();
    set_log_level(LogLevel::kOff);  // fuzz decks warn loudly by design
  }
  void TearDown() override { set_log_level(prev_); }
  LogLevel prev_ = LogLevel::kWarn;
};

using VerifyFuzz = QuietLog;

TEST_F(VerifyFuzz, CorpusIsNonTrivial) {
  // The corpus must exercise all three deck classes; catches an
  // accidentally emptied or mis-wired MIVTX_FUZZ_CORPUS_DIR.
  const std::vector<fs::path> files = corpus_files();
  ASSERT_GE(files.size(), 12u);
  std::size_t valid = 0, mutated = 0, adversarial = 0;
  for (const fs::path& f : files) {
    const std::string stem = f.stem().string();
    valid += stem.rfind("valid_", 0) == 0;
    mutated += stem.rfind("mut_", 0) == 0;
    adversarial += stem.rfind("adv_", 0) == 0;
  }
  EXPECT_GE(valid, 3u);
  EXPECT_GE(mutated, 3u);
  EXPECT_GE(adversarial, 3u);
}

TEST_F(VerifyFuzz, EveryCorpusDeckIsDiagnosedOrSolved) {
  for (const fs::path& f : corpus_files()) {
    SCOPED_TRACE(f.filename().string());
    verify::FuzzResult r;
    // exercise_netlist throws only when a stage broke its exception
    // contract (non-mivtx exception) — that is the bug being hunted.
    ASSERT_NO_THROW(r = verify::exercise_netlist(slurp(f)))
        << "pipeline let a non-mivtx exception escape";
    // Decks named valid_* must actually solve: a regression that starts
    // rejecting well-formed input is as much a bug as a crash.
    if (f.stem().string().rfind("valid_", 0) == 0) {
      EXPECT_EQ(r.outcome, verify::FuzzOutcome::kSolved)
          << verify::fuzz_outcome_name(r.outcome) << ": " << r.detail;
    }
  }
}

TEST_F(VerifyFuzz, MutantsOfEveryDeckNeverCrash) {
  // 24 deterministic mutants per deck; the seed fixes the entire stream so
  // any failure replays with the printed (file, seed) pair.
  for (const fs::path& f : corpus_files()) {
    const std::string text = slurp(f);
    for (std::uint64_t seed = 1; seed <= 24; ++seed) {
      SCOPED_TRACE(f.filename().string() + " seed " + std::to_string(seed));
      const std::string mutant = verify::mutate_netlist(text, seed);
      ASSERT_NO_THROW(verify::exercise_netlist(mutant));
    }
  }
}

TEST_F(VerifyFuzz, MutatorIsDeterministic) {
  const std::string text = slurp(corpus_files().front());
  EXPECT_EQ(verify::mutate_netlist(text, 7), verify::mutate_netlist(text, 7));
  // Different seeds explore (with overwhelming probability) different texts.
  EXPECT_NE(verify::mutate_netlist(text, 7), verify::mutate_netlist(text, 8));
}

// Small instances of each large-circuit generator, emitted as netlist
// text.  Keeps the generator emitters honest against the parser grammar
// and feeds structured multi-gate decks (MIV stems, segmented rails,
// Norton pads) into the same mutation pipeline as the hand-written corpus.
std::vector<std::pair<std::string, std::string>> generator_decks() {
  const core::ModelLibrary& lib = core::reference_model_library();
  const core::PpaEngine engine(lib);
  const auto models = engine.model_set(cells::Implementation::kMiv1Channel);
  std::vector<std::pair<std::string, std::string>> decks;
  // kick=false: a kicked ring oscillates indefinitely and would exhaust
  // the harness transient's step budget by design; the quiescent ring
  // still round-trips every generator construct.
  decks.emplace_back(
      "ring5", cells::to_netlist_text(cells::build_ring_oscillator(
                   5, cells::Implementation::kMiv1Channel, models,
                   cells::ParasiticSpec{}, 1.0, /*kick=*/false)));
  decks.emplace_back(
      "adder4", cells::to_netlist_text(cells::build_adder_array(
                    4, cells::Implementation::kMiv1Channel, models,
                    cells::ParasiticSpec{}, 1.0)));
  cells::PowerGridSpec spec;
  spec.rows = 6;
  spec.cols = 6;
  decks.emplace_back("grid6x6",
                     cells::to_netlist_text(cells::build_power_grid(spec)));
  return decks;
}

TEST_F(VerifyFuzz, GeneratorDecksRoundTripAndSolve) {
  for (const auto& [name, text] : generator_decks()) {
    SCOPED_TRACE(name);
    verify::FuzzResult r;
    ASSERT_NO_THROW(r = verify::exercise_netlist(text));
    EXPECT_EQ(r.outcome, verify::FuzzOutcome::kSolved)
        << verify::fuzz_outcome_name(r.outcome) << ": " << r.detail;
  }
}

TEST_F(VerifyFuzz, GeneratorDeckMutantsNeverCrash) {
  for (const auto& [name, text] : generator_decks()) {
    for (std::uint64_t seed = 1; seed <= 24; ++seed) {
      SCOPED_TRACE(name + " seed " + std::to_string(seed));
      ASSERT_NO_THROW(verify::exercise_netlist(
          verify::mutate_netlist(text, seed)));
    }
  }
}

TEST_F(VerifyFuzz, DegenerateInputsAreDiagnosed) {
  for (const char* text : {"", "\n\n\n", "title only", "title\n.end\n",
                           "t\n.tran\n.end", "t\nR1\n.end",
                           "t\nXsub a b c undefined\n.end"}) {
    SCOPED_TRACE(std::string("input: ") + text);
    ASSERT_NO_THROW(verify::exercise_netlist(text));
  }
}

// --- .mlib NLDM library fuzzing --------------------------------------------

std::vector<fs::path> mlib_corpus_files() {
  std::vector<fs::path> files;
  for (const auto& entry : fs::directory_iterator(MIVTX_FUZZ_CORPUS_DIR))
    if (entry.path().extension() == ".mlib") files.push_back(entry.path());
  std::sort(files.begin(), files.end());
  return files;
}

std::vector<fs::path> gnl_corpus_files() {
  std::vector<fs::path> files;
  for (const auto& entry : fs::directory_iterator(MIVTX_FUZZ_CORPUS_DIR))
    if (entry.path().extension() == ".gnl") files.push_back(entry.path());
  std::sort(files.begin(), files.end());
  return files;
}

TEST_F(VerifyFuzz, EveryLibraryDeckIsRejectedOrSolved) {
  const std::vector<fs::path> files = mlib_corpus_files();
  ASSERT_GE(files.size(), 5u);
  for (const fs::path& f : files) {
    SCOPED_TRACE(f.filename().string());
    verify::FuzzResult r;
    ASSERT_NO_THROW(r = verify::exercise_library(slurp(f)));
    // kNoConverge here means the parser accepted a library that fails its
    // own invariants (non-finite interpolation or a lossy round-trip) — a
    // bug, never acceptable from any input.
    ASSERT_NE(r.outcome, verify::FuzzOutcome::kNoConverge) << r.detail;
    const std::string stem = f.stem().string();
    if (stem.rfind("mlib_valid_", 0) == 0) {
      EXPECT_EQ(r.outcome, verify::FuzzOutcome::kSolved)
          << verify::fuzz_outcome_name(r.outcome) << ": " << r.detail;
    } else {
      EXPECT_EQ(r.outcome, verify::FuzzOutcome::kParseRejected)
          << verify::fuzz_outcome_name(r.outcome) << ": " << r.detail;
    }
  }
}

TEST_F(VerifyFuzz, LibraryMutantsNeverCrashOrBreakInvariants) {
  for (const fs::path& f : mlib_corpus_files()) {
    const std::string text = slurp(f);
    for (std::uint64_t seed = 1; seed <= 24; ++seed) {
      SCOPED_TRACE(f.filename().string() + " seed " + std::to_string(seed));
      verify::FuzzResult r;
      ASSERT_NO_THROW(r = verify::exercise_library(
                          verify::mutate_netlist(text, seed)));
      ASSERT_NE(r.outcome, verify::FuzzOutcome::kNoConverge) << r.detail;
    }
  }
}

TEST_F(VerifyFuzz, DesignsAgainstHoleyLibrariesAreDiagnosed) {
  // The half adder needs XOR2X1/AND2X1: the mini library has neither
  // (whole-cell holes), the holey library lacks three of the four XOR2X1
  // arcs (pin-level holes).  Both must be structured missing-timing
  // rejections, never crashes.
  const std::string design =
      slurp(fs::path(MIVTX_FUZZ_CORPUS_DIR) / "gnl_valid_half_adder.gnl");
  for (const char* lib_name :
       {"mlib_valid_mini.mlib", "mlib_valid_holey.mlib"}) {
    SCOPED_TRACE(lib_name);
    const std::string lib =
        slurp(fs::path(MIVTX_FUZZ_CORPUS_DIR) / lib_name);
    verify::FuzzResult r;
    ASSERT_NO_THROW(r = verify::exercise_design(design, lib));
    EXPECT_EQ(r.outcome, verify::FuzzOutcome::kLintRejected)
        << verify::fuzz_outcome_name(r.outcome) << ": " << r.detail;
    EXPECT_NE(r.detail.find("missing-timing"), std::string::npos) << r.detail;
  }
}

TEST_F(VerifyFuzz, DesignLibraryPairMutantsNeverCrash) {
  const std::string lib = slurp(fs::path(MIVTX_FUZZ_CORPUS_DIR) /
                                "mlib_valid_holey.mlib");
  for (const fs::path& f : gnl_corpus_files()) {
    const std::string design = slurp(f);
    for (std::uint64_t seed = 1; seed <= 12; ++seed) {
      SCOPED_TRACE(f.filename().string() + " seed " + std::to_string(seed));
      // Mutate the two sides on different streams: design corruption with
      // a clean library, then a clean design with library corruption.
      ASSERT_NO_THROW(verify::exercise_design(
          verify::mutate_netlist(design, seed), lib));
      ASSERT_NO_THROW(verify::exercise_design(
          design, verify::mutate_netlist(lib, seed + 1000)));
    }
  }
}

}  // namespace
}  // namespace mivtx
