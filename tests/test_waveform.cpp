// Waveform container and measurement routines.
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"
#include "common/rng.h"
#include "waveform/measure.h"
#include "waveform/waveform.h"

namespace mivtx::waveform {
namespace {

Waveform ramp(double t0, double t1, double v0, double v1, std::size_t n) {
  Waveform w;
  for (std::size_t i = 0; i < n; ++i) {
    const double f = static_cast<double>(i) / (n - 1);
    w.append(t0 + f * (t1 - t0), v0 + f * (v1 - v0));
  }
  return w;
}

TEST(Waveform, AppendEnforcesMonotonicTime) {
  Waveform w;
  w.append(0.0, 1.0);
  w.append(1.0, 2.0);
  EXPECT_THROW(w.append(1.0, 3.0), mivtx::Error);
  EXPECT_THROW(w.append(0.5, 3.0), mivtx::Error);
}

TEST(Waveform, CtorValidates) {
  EXPECT_THROW(Waveform({0.0, 0.0}, {1.0, 2.0}), mivtx::Error);
  EXPECT_THROW(Waveform({0.0}, {1.0, 2.0}), mivtx::Error);
}

TEST(Waveform, SampleInterpolatesAndClamps) {
  const Waveform w({0.0, 1.0, 2.0}, {0.0, 10.0, 0.0});
  EXPECT_DOUBLE_EQ(w.sample(0.5), 5.0);
  EXPECT_DOUBLE_EQ(w.sample(1.5), 5.0);
  EXPECT_DOUBLE_EQ(w.sample(-1.0), 0.0);
  EXPECT_DOUBLE_EQ(w.sample(99.0), 0.0);
  EXPECT_DOUBLE_EQ(w.min_value(), 0.0);
  EXPECT_DOUBLE_EQ(w.max_value(), 10.0);
}

TEST(Waveform, IntegralOfRampExact) {
  const Waveform w = ramp(0.0, 2.0, 0.0, 4.0, 21);
  // Integral of a 0->4 ramp over [0,2] is 4.
  EXPECT_NEAR(w.integral(0.0, 2.0), 4.0, 1e-12);
  EXPECT_NEAR(w.average(0.0, 2.0), 2.0, 1e-12);
  // Partial window [0.5, 1.5]: integral of 2t over that window = 2.
  EXPECT_NEAR(w.integral(0.5, 1.5), 2.0, 1e-12);
}

TEST(Waveform, IntegralLinearity) {
  Rng rng(3);
  Waveform a, b;
  double t = 0.0;
  for (int i = 0; i < 50; ++i) {
    a.append(t, rng.uniform(-1, 1));
    b.append(t, rng.uniform(-1, 1));
    t += rng.uniform(0.01, 0.1);
  }
  const Waveform s = Waveform::combine(a, b, [](double x, double y) { return x + y; });
  EXPECT_NEAR(s.integral(a.t_begin(), a.t_end()),
              a.integral(a.t_begin(), a.t_end()) +
                  b.integral(b.t_begin(), b.t_end()),
              1e-12);
}

TEST(Waveform, RmsOfConstant) {
  const Waveform w({0.0, 1.0, 3.0}, {2.0, 2.0, 2.0});
  EXPECT_NEAR(w.rms(0.0, 3.0), 2.0, 1e-12);
}

TEST(Waveform, WindowRestricts) {
  const Waveform w = ramp(0.0, 1.0, 0.0, 1.0, 11);
  const Waveform win = w.window(0.25, 0.75);
  EXPECT_DOUBLE_EQ(win.t_begin(), 0.25);
  EXPECT_DOUBLE_EQ(win.t_end(), 0.75);
  EXPECT_NEAR(win.sample(0.5), 0.5, 1e-12);
}

TEST(Measure, FindCrossingsBothEdges) {
  // Triangle 0 -> 1 -> 0 over [0, 2].
  const Waveform w({0.0, 1.0, 2.0}, {0.0, 1.0, 0.0});
  const auto rises = find_crossings(w, 0.5, EdgeKind::kRise);
  const auto falls = find_crossings(w, 0.5, EdgeKind::kFall);
  ASSERT_EQ(rises.size(), 1u);
  ASSERT_EQ(falls.size(), 1u);
  EXPECT_NEAR(rises[0].time, 0.5, 1e-12);
  EXPECT_NEAR(falls[0].time, 1.5, 1e-12);
  EXPECT_EQ(find_crossings(w, 0.5, EdgeKind::kAny).size(), 2u);
  EXPECT_TRUE(find_crossings(w, 2.0).empty());
}

TEST(Measure, NextCrossingAfter) {
  const Waveform w({0.0, 1.0, 2.0, 3.0, 4.0}, {0.0, 1.0, 0.0, 1.0, 0.0});
  const auto c = next_crossing(w, 0.5, 1.6, EdgeKind::kRise);
  ASSERT_TRUE(c.has_value());
  EXPECT_NEAR(c->time, 2.5, 1e-12);
  EXPECT_FALSE(next_crossing(w, 0.5, 3.9, EdgeKind::kRise).has_value());
}

// --- at-level boundary semantics (the old scanner used strict inequality
// on both sides of each segment and missed samples landing exactly on the
// threshold) ---------------------------------------------------------------

TEST(Measure, ExactHitSampleIsOneCrossing) {
  // The 0.5 sample at t=1 IS the crossing; the old strict-side scan saw
  // 0.25<0.5 -> 0.5 and 0.5 -> 0.75>0.5 as two non-crossing segments.
  const Waveform w({0.0, 1.0, 2.0}, {0.25, 0.5, 0.75});
  const auto c = find_crossings(w, 0.5, EdgeKind::kAny);
  ASSERT_EQ(c.size(), 1u);
  EXPECT_NEAR(c[0].time, 1.0, 1e-12);
  EXPECT_EQ(c[0].edge, EdgeKind::kRise);
}

TEST(Measure, ExactHitFirstSampleStartsAtLevel) {
  // Starting exactly at the level and departing upward counts as a rise at
  // the first sample (the signal reaches the level at t=0, not later).
  const Waveform w({0.0, 1.0, 2.0}, {0.5, 1.0, 1.5});
  const auto c = find_crossings(w, 0.5, EdgeKind::kAny);
  ASSERT_EQ(c.size(), 1u);
  EXPECT_NEAR(c[0].time, 0.0, 1e-12);
  EXPECT_EQ(c[0].edge, EdgeKind::kRise);
}

TEST(Measure, PlateauAtLevelIsOneCrossingAtPlateauStart) {
  // Rise into a flat run exactly at the level, then leave upward: one
  // crossing, timestamped where the signal first reaches the level.
  const Waveform w({0.0, 1.0, 2.0, 3.0, 4.0}, {0.0, 0.5, 0.5, 0.5, 1.0});
  const auto c = find_crossings(w, 0.5, EdgeKind::kAny);
  ASSERT_EQ(c.size(), 1u);
  EXPECT_NEAR(c[0].time, 1.0, 1e-12);
  EXPECT_EQ(c[0].edge, EdgeKind::kRise);
}

TEST(Measure, TouchWithoutCrossingReportsNothing) {
  // Touch the level from below and retreat: never crosses.
  const Waveform w({0.0, 1.0, 2.0}, {0.0, 0.5, 0.0});
  EXPECT_TRUE(find_crossings(w, 0.5, EdgeKind::kAny).empty());
  // Same for a flat touch.
  const Waveform p({0.0, 1.0, 2.0, 3.0}, {0.0, 0.5, 0.5, 0.0});
  EXPECT_TRUE(find_crossings(p, 0.5, EdgeKind::kAny).empty());
}

TEST(Measure, TrailingPlateauCountsArrival) {
  // Rise to the level and stay there: the signal reached the level with a
  // rising approach, so the arrival counts (propagation_delay on a settled
  // half-VDD output depends on this).
  const Waveform w({0.0, 1.0, 2.0}, {0.0, 0.5, 0.5});
  const auto c = find_crossings(w, 0.5, EdgeKind::kAny);
  ASSERT_EQ(c.size(), 1u);
  EXPECT_NEAR(c[0].time, 1.0, 1e-12);
  EXPECT_EQ(c[0].edge, EdgeKind::kRise);
}

TEST(Measure, MonotoneRampExactSampleSingleCrossing) {
  // An 11-point 0->1 ramp puts a sample exactly on 0.5; exactly one rise.
  const Waveform w = ramp(0.0, 1.0, 0.0, 1.0, 11);
  const auto c = find_crossings(w, 0.5, EdgeKind::kAny);
  ASSERT_EQ(c.size(), 1u);
  EXPECT_NEAR(c[0].time, 0.5, 1e-12);
  EXPECT_EQ(c[0].edge, EdgeKind::kRise);
}

TEST(Measure, NextCrossingMatchesFindCrossingsRandomized) {
  // next_crossing scans incrementally from a binary-searched start; it must
  // agree with filtering find_crossings for every `after`, including
  // waveforms with exact-at-level samples and plateaus.
  Rng rng(17);
  for (int trial = 0; trial < 50; ++trial) {
    Waveform w;
    double t = 0.0;
    const double level = 0.5;
    for (int i = 0; i < 40; ++i) {
      // Quantized values land exactly on the level often.
      const double v = std::round(rng.uniform(0.0, 4.0)) / 4.0;
      w.append(t, v);
      t += rng.uniform(0.05, 0.2);
    }
    for (const EdgeKind kind :
         {EdgeKind::kRise, EdgeKind::kFall, EdgeKind::kAny}) {
      const auto all = find_crossings(w, level, kind);
      for (double after = -0.1; after < w.t_end() + 0.1; after += 0.037) {
        const auto got = next_crossing(w, level, after, kind);
        const Crossing* want = nullptr;
        for (const Crossing& c : all) {
          if (c.time >= after) {
            want = &c;
            break;
          }
        }
        ASSERT_EQ(got.has_value(), want != nullptr)
            << "trial " << trial << " after=" << after;
        if (want != nullptr) {
          EXPECT_DOUBLE_EQ(got->time, want->time);
          EXPECT_EQ(got->edge, want->edge);
        }
      }
    }
  }
}

TEST(Measure, PropagationDelay) {
  const Waveform in({0.0, 1.0, 2.0}, {0.0, 1.0, 1.0});
  const Waveform out({0.0, 1.2, 2.2, 3.0}, {1.0, 1.0, 0.0, 0.0});
  const auto d = propagation_delay(in, out, 0.5, 0.5, 0.0, EdgeKind::kRise,
                                   EdgeKind::kFall);
  ASSERT_TRUE(d.has_value());
  EXPECT_NEAR(*d, 1.2, 1e-12);  // in crosses at 0.5, out falls at 1.7
  EXPECT_FALSE(propagation_delay(in, out, 0.5, 0.5, 0.0, EdgeKind::kFall,
                                 EdgeKind::kAny)
                   .has_value());
}

TEST(Measure, TransitionTime) {
  const Waveform w = ramp(0.0, 1.0, 0.0, 1.0, 101);
  const auto tr = transition_time(w, 0.0, 1.0, 0.0, EdgeKind::kRise);
  ASSERT_TRUE(tr.has_value());
  EXPECT_NEAR(*tr, 0.8, 1e-9);  // 10% to 90% of a unit ramp
  EXPECT_FALSE(transition_time(w, 0.0, 1.0, 0.0, EdgeKind::kFall).has_value());
}

TEST(Measure, SupplyPowerAndEnergy) {
  // Constant 2 mA draw at 1 V for 1 us: 2 mW, 2 nJ.
  const Waveform i({0.0, 1e-6}, {2e-3, 2e-3});
  EXPECT_NEAR(average_supply_power(i, 1.0, 0.0, 1e-6), 2e-3, 1e-15);
  EXPECT_NEAR(supply_energy(i, 1.0, 0.0, 1e-6), 2e-9, 1e-20);
}

TEST(Waveform, CombineUnionGrid) {
  const Waveform a({0.0, 2.0}, {0.0, 2.0});
  const Waveform b({0.0, 1.0, 2.0}, {1.0, 1.0, 1.0});
  const Waveform s =
      Waveform::combine(a, b, [](double x, double y) { return x * y; });
  EXPECT_EQ(s.size(), 3u);
  EXPECT_NEAR(s.sample(1.0), 1.0, 1e-12);
  EXPECT_NEAR(s.sample(2.0), 2.0, 1e-12);
}

TEST(Waveform, DegenerateWindowsThrow) {
  const Waveform w({0.0, 1.0}, {0.0, 1.0});
  EXPECT_THROW(w.average(0.5, 0.5), mivtx::Error);
  EXPECT_THROW(w.integral(1.0, 0.0), mivtx::Error);
  Waveform empty;
  EXPECT_THROW(empty.sample(0.0), mivtx::Error);
}

}  // namespace
}  // namespace mivtx::waveform
